package service

import (
	"container/list"
	"context"
	"sync"

	"repro/internal/obs"
)

// solveResult is the cached/coalesced unit of work: the outcome of one
// reconstruction (or count) solve for a canonical (encoding, entry,
// properties, limit) key.
type solveResult struct {
	// Candidates are the change-maps found, rendered LSB-first
	// (clock-cycle 0 leftmost) like the CLI prints them.
	Candidates []string `json:"candidates,omitempty"`
	// Changes lists each candidate's change cycles, aligned with
	// Candidates. Omitted for count-only queries.
	Changes [][]int `json:"changes,omitempty"`
	// Count is the number of candidates found (== len(Candidates) for
	// reconstruct queries; the only payload for count queries).
	Count int `json:"count"`
	// Exhausted reports that the candidate space was fully enumerated:
	// the result is the complete answer, not a limit-bounded prefix.
	Exhausted bool `json:"exhausted"`
}

// lruCache is a mutex-guarded LRU of solveResults keyed by canonical
// request hashes. Entries are immutable once inserted, so a hit can be
// returned without copying.
type lruCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits    *obs.Counter
	misses  *obs.Counter
	evicted *obs.Counter
}

type lruEntry struct {
	key string
	res solveResult
}

func newLRUCache(max int, r *obs.Registry) *lruCache {
	return &lruCache{
		max:     max,
		ll:      list.New(),
		items:   make(map[string]*list.Element, max),
		hits:    r.Counter(MetricCacheHits),
		misses:  r.Counter(MetricCacheMisses),
		evicted: r.Counter(MetricCacheEvicted),
	}
}

func (c *lruCache) get(key string) (solveResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Inc()
		return solveResult{}, false
	}
	c.ll.MoveToFront(el)
	c.hits.Inc()
	return el.Value.(*lruEntry).res, true
}

func (c *lruCache) add(key string, res solveResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		// A coalescing race can insert the same key twice; keep the
		// newer result and the recency bump.
		el.Value.(*lruEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, res: res})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
		c.evicted.Inc()
	}
}

// len reports the live entry count (tests).
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// flightGroup coalesces concurrent identical solves, singleflight
// style: the first request for a key becomes the leader and runs the
// solve; followers arriving while it is in flight block on the
// leader's completion (or their own deadline) and share its result.
// Combined with the LRU this guarantees the acceptance property that N
// concurrent identical requests cost exactly one SAT solve.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	res  solveResult
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: map[string]*flightCall{}}
}

// do runs fn for key unless an identical call is already in flight, in
// which case it waits for that call and shares its outcome. shared
// reports whether the result came from another request's solve. A
// follower whose ctx expires first gets ctx.Err() — the leader's solve
// keeps running for the peers still waiting on it.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (solveResult, error)) (res solveResult, shared bool, err error) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.res, true, c.err
		case <-ctx.Done():
			return solveResult{}, true, ctx.Err()
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.res, c.err = fn()
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.res, false, c.err
}
