package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/obs"
)

// postBatch sends a JSON batch body and decodes the typed response.
func postBatch(t testing.TB, base, body string) (int, batchResponse) {
	t.Helper()
	resp, err := http.Post(base+"/v1/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var out batchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("batch response: %v\n%s", err, raw)
		}
	}
	return resp.StatusCode, out
}

// tpFor renders the timeprint of a signal with the given change cycles
// under enc — a valid (TP, k) query payload.
func tpFor(t testing.TB, enc *encoding.Encoding, m int, changes ...int) (string, int) {
	t.Helper()
	e := core.Log(enc, core.SignalFromChanges(m, changes...))
	return e.TP.String(), e.K
}

// TestBatchMixedJobsAndPerJobErrors exercises the batch contract: one
// shared spec (borrowed from the wire-log job's header), heterogeneous
// jobs, per-job typed failures that do not disturb their siblings, and
// exactly one encoding build for the whole request.
func TestBatchMixedJobsAndPerJobErrors(t *testing.T) {
	wire, truth := testLog(t, 16, 9, 3, 7)
	enc, err := encoding.Incremental(16, 9, 4)
	if err != nil {
		t.Fatal(err)
	}
	tp, k := tpFor(t, enc, 16, 2, 5, 11)
	_, base, reg := startServer(t, Config{Workers: 2}, 0)

	body := fmt.Sprintf(`{"jobs":[
		{"log":%q,"limit":-1},
		{"tp":%q,"k":%d},
		{"tp":%q,"k":%d,"count_only":true},
		{"tp":"10","k":1},
		{"properties":"mingap(2)"}
	]}`, jsonB64(wire), tp, k, tp, k)
	code, out := postBatch(t, base, body)
	if code != http.StatusOK {
		t.Fatalf("batch status %d", code)
	}
	if out.M != 16 || out.B != 9 {
		t.Fatalf("spec not borrowed from wire header: m=%d b=%d", out.M, out.B)
	}
	if len(out.Jobs) != 5 {
		t.Fatalf("got %d job results", len(out.Jobs))
	}
	for i, want := range []int{200, 200, 200, 400, 400} {
		if out.Jobs[i].Status != want {
			t.Fatalf("job %d status %d (%s), want %d", i, out.Jobs[i].Status, out.Jobs[i].Error, want)
		}
	}
	// The wire-log job must reconstruct the logged truth.
	found := false
	for _, c := range out.Jobs[0].Results[0].Candidates {
		if c == truth.String() {
			found = true
		}
	}
	if !found {
		t.Fatalf("job 0 candidates %v missing truth %s", out.Jobs[0].Results[0].Candidates, truth)
	}
	// Count-only results carry no materialized candidates.
	if out.Jobs[2].Results[0].Candidates != nil {
		t.Fatal("count_only job materialized candidates")
	}
	if got := reg.Snapshot().Counters[MetricEncodingBuilds]; got != 1 {
		t.Fatalf("%s = %d for one batch on one spec, want 1", MetricEncodingBuilds, got)
	}
}

// TestSessionOracleRaceReuseCloneFallback hammers one spec with
// concurrent unary and batch traffic under a pinned "sat-inc" oracle
// and asserts the TryLock discipline's accounting closes: every
// executed solve either reused the warm retained solver, ran on a
// clone, or fell past the session's k ladder to the serial engine —
// reuse + clone + fallback must sum to the solve count exactly.
// Run under -race this also shakes out data races between the
// session's lazy encoding build, the TryLock hand-off, and the batch
// worker pool.
func TestSessionOracleRaceReuseCloneFallback(t *testing.T) {
	const m, b = 32, 12
	enc, err := encoding.Incremental(m, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	type query struct {
		tp string
		k  int
	}
	var qs []query
	for i := 0; i < 24; i++ {
		a := i % (m - 4)
		tp, k := tpFor(t, enc, m, a, a+1, a+3)
		qs = append(qs, query{tp, k})
	}
	// Queries past the session ladder (k > SessionMaxK): the session
	// oracle refuses them before taking a solver, so they are the
	// fallback leg of the accounting.
	for i := 0; i < 4; i++ {
		changes := make([]int, 20)
		for c := range changes {
			changes[c] = (c*3 + i) % m
		}
		sort.Ints(changes)
		tp, k := tpFor(t, enc, m, changes...)
		if k <= 16 {
			t.Fatalf("fallback query %d has k=%d, want > 16", i, k)
		}
		qs = append(qs, query{tp, k})
	}

	_, base, reg := startServer(t, Config{Workers: 8, QueueDepth: 2048, Oracle: "sat-inc"}, 0)
	specJSON := fmt.Sprintf(`{"m":%d,"b":%d}`, m, b)
	var wg sync.WaitGroup
	var bad atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for _, q := range qs {
				body := fmt.Sprintf(`{"encoding":%s,"tp":%q,"k":%d}`, specJSON, q.tp, q.k)
				resp, err := http.Post(base+"/v1/reconstruct", "application/json", strings.NewReader(body))
				if err != nil {
					bad.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					bad.Add(1)
				}
			}
			// One batch carrying the whole mix.
			jobs := make([]string, len(qs))
			for i, q := range qs {
				jobs[i] = fmt.Sprintf(`{"tp":%q,"k":%d}`, q.tp, q.k)
			}
			code, out := postBatch(t, base, fmt.Sprintf(`{"encoding":%s,"jobs":[%s]}`, specJSON, strings.Join(jobs, ",")))
			if code != http.StatusOK {
				bad.Add(1)
				return
			}
			for _, jr := range out.Jobs {
				if jr.Status != http.StatusOK {
					t.Errorf("goroutine %d: batch job %d: %d %s", g, jr.Index, jr.Status, jr.Error)
				}
			}
		}(g)
	}
	wg.Wait()
	if n := bad.Load(); n != 0 {
		t.Fatalf("%d requests failed", n)
	}
	snap := reg.Snapshot()
	solves := snap.Counters[MetricSolves]
	reuse := snap.Counters[MetricSessionReuse]
	clone := snap.Counters[MetricSessionClone]
	fallback := snap.Counters[MetricSessionFallback]
	if solves == 0 || reuse == 0 || fallback == 0 {
		t.Fatalf("degenerate run: solves=%d reuse=%d clone=%d fallback=%d", solves, reuse, clone, fallback)
	}
	if reuse+clone+fallback != solves {
		t.Fatalf("accounting leak: reuse(%d) + clone(%d) + fallback(%d) = %d, want solves=%d",
			reuse, clone, fallback, reuse+clone+fallback, solves)
	}
}

// TestCacheKeyCanonicalization pins the documented cache-key contract:
// keys agree iff the engine would do identical work — property
// formatting is canonicalized away, while limit, count-mode, entry and
// spec differences keep keys distinct.
func TestCacheKeyCanonicalization(t *testing.T) {
	spec, err := EncodingSpec{M: 16, B: 9}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	entry := core.LogEntry{TP: bitvec.FromUint(0xA5, 9), K: 2}
	key := func(props string, e core.LogEntry, limit int, countOnly bool, sp EncodingSpec) string {
		t.Helper()
		_, pk, err := canonProps(props)
		if err != nil {
			t.Fatalf("props %q: %v", props, err)
		}
		return cacheKey(sp.key(), e, pk, limit, countOnly)
	}
	base := key("mingap(3); dk(32,3)", entry, 16, false, spec)

	same := []string{
		"mingap(3);dk(32,3)",
		"mingap(3) ;  dk(32,3)",
		"MINGAP(3); DK(32,3)",
	}
	for _, props := range same {
		if got := key(props, entry, 16, false, spec); got != base {
			t.Errorf("props %q keyed differently from the canonical spelling", props)
		}
	}

	specRandom, err := EncodingSpec{Scheme: "random", M: 16, B: 9, Seed: 7}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[string]string{
		"different props": key("mingap(4); dk(32,3)", entry, 16, false, spec),
		"no props":        key("", entry, 16, false, spec),
		"different limit": key("mingap(3); dk(32,3)", entry, 17, false, spec),
		"count mode":      key("mingap(3); dk(32,3)", entry, 16, true, spec),
		"different k":     key("mingap(3); dk(32,3)", core.LogEntry{TP: entry.TP, K: 3}, 16, false, spec),
		"different spec":  key("mingap(3); dk(32,3)", entry, 16, false, specRandom),
	}
	seen := map[string]string{base: "base"}
	for name, k := range distinct {
		if prev, dup := seen[k]; dup {
			t.Errorf("%s collides with %s", name, prev)
		}
		seen[k] = name
	}
}

// TestBatchJobOrderSharesCache is the batch-level face of the same
// contract: two batches that differ only in job order produce the same
// per-entry cache keys, so the second batch is answered entirely from
// the cache.
func TestBatchJobOrderSharesCache(t *testing.T) {
	const m, b = 16, 9
	enc, err := encoding.Incremental(m, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, base, reg := startServer(t, Config{Workers: 2}, 0)
	jobs := make([]string, 3)
	for i := range jobs {
		tp, k := tpFor(t, enc, m, i+1, i+5, i+9)
		jobs[i] = fmt.Sprintf(`{"tp":%q,"k":%d}`, tp, k)
	}
	spec := fmt.Sprintf(`{"m":%d,"b":%d}`, m, b)
	if code, _ := postBatch(t, base, fmt.Sprintf(`{"encoding":%s,"jobs":[%s,%s,%s]}`, spec, jobs[0], jobs[1], jobs[2])); code != 200 {
		t.Fatalf("first batch: %d", code)
	}
	code, out := postBatch(t, base, fmt.Sprintf(`{"encoding":%s,"jobs":[%s,%s,%s]}`, spec, jobs[2], jobs[0], jobs[1]))
	if code != 200 {
		t.Fatalf("reordered batch: %d", code)
	}
	for i, jr := range out.Jobs {
		if len(jr.Results) != 1 || !jr.Results[0].Cached {
			t.Fatalf("reordered job %d not served from cache: %+v", i, jr.Results)
		}
	}
	if solves := reg.Snapshot().Counters[MetricSolves]; solves != 3 {
		t.Fatalf("solves = %d across both batches, want 3 (order canonicalized away)", solves)
	}
}

// TestBatchPressureDoesNotEvictInFlightSession pins the eviction
// discipline: a session evicted from the table while a batch still
// holds it keeps serving that batch (no rebuild, no error); only a
// returning client pays the rebuild.
func TestBatchPressureDoesNotEvictInFlightSession(t *testing.T) {
	const m, b = 16, 9
	enc, err := encoding.Incremental(m, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	tp, k := tpFor(t, enc, m, 3, 7)
	_, base, reg := startServer(t, Config{MaxSessions: 1, Workers: 2, QueueDepth: 16}, 150*time.Millisecond)
	spec := fmt.Sprintf(`{"m":%d,"b":%d}`, m, b)

	type result struct {
		code int
		out  batchResponse
	}
	done := make(chan result, 1)
	go func() {
		c, o := postBatch(t, base, fmt.Sprintf(`{"encoding":%s,"jobs":[{"tp":%q,"k":%d},{"tp":%q,"k":%d,"limit":8}]}`, spec, tp, k, tp, k))
		done <- result{c, o}
	}()
	waitGauge(t, reg, MetricSolveBusy, 1)

	// Two other specs (same geometry, different random codebooks)
	// stampede the size-1 session table, evicting the batch's entry
	// while its solves are still in flight (the session lookup happens
	// at request start, before admission queues).
	for seed := 1; seed <= 2; seed++ {
		evict := fmt.Sprintf(`{"encoding":{"scheme":"random","m":%d,"b":%d,"seed":%d},"tp":%q,"k":%d}`, m, b, seed, tp, k)
		resp, err := http.Post(base+"/v1/reconstruct", "application/json", strings.NewReader(evict))
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("evicting request (seed %d): %v %v", seed, err, resp)
		}
		resp.Body.Close()
	}
	res := <-done
	if res.code != http.StatusOK {
		t.Fatalf("in-flight batch failed after eviction: %d", res.code)
	}
	for i, jr := range res.out.Jobs {
		if jr.Status != http.StatusOK {
			t.Fatalf("job %d: %d %s", i, jr.Status, jr.Error)
		}
	}
	builds := reg.Snapshot().Counters[MetricEncodingBuilds]
	if builds != 3 {
		t.Fatalf("builds = %d during the in-flight phase, want 3 (batch spec once + two evictors)", builds)
	}
	// The returning client pays exactly one rebuild.
	body := fmt.Sprintf(`{"encoding":%s,"tp":%q,"k":%d,"limit":4}`, spec, tp, k)
	resp, err := http.Post(base+"/v1/reconstruct", "application/json", strings.NewReader(body))
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("returning request: %v %v", err, resp)
	}
	resp.Body.Close()
	if got := reg.Snapshot().Counters[MetricEncodingBuilds]; got != builds+1 {
		t.Fatalf("builds = %d after return, want %d", got, builds+1)
	}
}

// TestBatchExceedingQueueRejectedAtomically pins atomic admission: a
// batch whose entry count cannot fit the queue is shed whole — 429,
// zero jobs admitted, zero solves run — and the failed reservation
// leaves no residue (a fitting batch right after succeeds).
func TestBatchExceedingQueueRejectedAtomically(t *testing.T) {
	const m, b = 16, 9
	enc, err := encoding.Incremental(m, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	tp, k := tpFor(t, enc, m, 2, 9)
	_, base, reg := startServer(t, Config{QueueDepth: 4, Workers: 1}, 0)
	spec := fmt.Sprintf(`{"m":%d,"b":%d}`, m, b)
	job := fmt.Sprintf(`{"tp":%q,"k":%d}`, tp, k)

	big := fmt.Sprintf(`{"encoding":%s,"jobs":[%s,%s,%s,%s,%s]}`, spec, job, job, job, job, job)
	resp, err := http.Post(base+"/v1/batch", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("oversized batch: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	snap := reg.Snapshot()
	if snap.Counters[MetricBatchJobs] != 0 || snap.Counters[MetricSolves] != 0 {
		t.Fatalf("partial admission: jobs=%d solves=%d, want 0/0",
			snap.Counters[MetricBatchJobs], snap.Counters[MetricSolves])
	}
	if snap.Counters[MetricBatchShed] != 1 || snap.Counters[MetricShed] != 1 {
		t.Fatalf("shed accounting: batch=%d total=%d, want 1/1",
			snap.Counters[MetricBatchShed], snap.Counters[MetricShed])
	}
	if snap.Gauges[MetricQueueDepth].Value != 0 {
		t.Fatalf("queue gauge %d after atomic rejection, want 0", snap.Gauges[MetricQueueDepth].Value)
	}

	code, out := postBatch(t, base, fmt.Sprintf(`{"encoding":%s,"jobs":[%s,%s,%s]}`, spec, job, job, job))
	if code != http.StatusOK {
		t.Fatalf("fitting batch after rejection: %d", code)
	}
	for _, jr := range out.Jobs {
		if jr.Status != http.StatusOK {
			t.Fatalf("job %d after rejection: %d %s", jr.Index, jr.Status, jr.Error)
		}
	}
}

// TestDrainCompletesInFlightBatch pins graceful shutdown: a batch
// whose solves are running when Shutdown begins completes with full
// results inside the drain budget.
func TestDrainCompletesInFlightBatch(t *testing.T) {
	const m, b = 16, 9
	enc, err := encoding.Incremental(m, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	tp, k := tpFor(t, enc, m, 4, 10)
	srv, base, reg := startServer(t, Config{Workers: 2}, 200*time.Millisecond)
	spec := fmt.Sprintf(`{"m":%d,"b":%d}`, m, b)

	type result struct {
		code int
		out  batchResponse
	}
	done := make(chan result, 1)
	go func() {
		// Distinct limits keep the three jobs from coalescing, so all
		// three really occupy the solve path during the drain.
		c, o := postBatch(t, base, fmt.Sprintf(
			`{"encoding":%s,"jobs":[{"tp":%q,"k":%d},{"tp":%q,"k":%d,"limit":8},{"tp":%q,"k":%d,"limit":4}]}`,
			spec, tp, k, tp, k, tp, k))
		done <- result{c, o}
	}()
	waitGauge(t, reg, MetricSolveBusy, 1)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	res := <-done
	if res.code != http.StatusOK {
		t.Fatalf("in-flight batch during drain: %d", res.code)
	}
	for _, jr := range res.out.Jobs {
		if jr.Status != http.StatusOK {
			t.Fatalf("job %d during drain: %d %s", jr.Index, jr.Status, jr.Error)
		}
	}
}

// --- streaming ingest ---

func startStreamServer(t testing.TB, cfg Config) (*Server, string, *obs.Registry) {
	t.Helper()
	cfg.StreamAddr = "127.0.0.1:0"
	srv, _, reg := startServer(t, cfg, 0)
	return srv, srv.StreamAddr().String(), reg
}

// TestStreamIngestAndResume drives the full stream lifecycle: hello,
// frames advancing the trace-cycle position, a clean end, and a
// reconnect resuming exactly where the stream left off — all on one
// encoding build.
func TestStreamIngestAndResume(t *testing.T) {
	const m, b = 16, 9
	wire1, truth := testLog(t, m, b, 3, 7)
	wire2, _ := testLog(t, m, b, 2)
	_, streamAddr, reg := startStreamServer(t, Config{Workers: 2, Oracle: "sat-inc"})

	hello := StreamHello{Device: "dev0", Signal: "net.valid", Encoding: EncodingSpec{M: m, B: b}, Limit: -1}
	sc, err := DialStream(streamAddr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ack, err := sc.Hello(hello)
	if err != nil {
		t.Fatal(err)
	}
	if ack.M != m || ack.B != b || ack.NextTraceCycle != 0 {
		t.Fatalf("ack %+v", ack)
	}
	for i, wire := range [][]byte{wire1, wire2} {
		msg, err := sc.SendFrame(wire)
		if err != nil || msg.Status != 0 {
			t.Fatalf("frame %d: %v %+v", i, err, msg)
		}
		if msg.TraceCycleBase != i {
			t.Fatalf("frame %d base %d, want %d", i, msg.TraceCycleBase, i)
		}
		if i == 0 {
			found := false
			for _, c := range msg.Results[0].Candidates {
				if c == truth.String() {
					found = true
				}
			}
			if !found {
				t.Fatalf("frame 0 candidates %v missing truth", msg.Results[0].Candidates)
			}
		}
	}
	doneMsg, err := sc.End()
	if err != nil || doneMsg.Frames != 2 || doneMsg.Entries != 2 {
		t.Fatalf("end: %v %+v", err, doneMsg)
	}
	sc.Close()

	// Reconnect: the stream position survives the connection.
	sc2 := mustHello(t, streamAddr, hello, 2)
	defer sc2.Close()
	// A second hello on a live connection is a protocol violation: the
	// server reads it as a garbage frame header and refuses it.
	if ack2, err := sc2.Hello(hello); err == nil {
		t.Fatalf("double hello on one connection accepted: %+v", ack2)
	}
	snap := reg.Snapshot()
	if snap.Counters[MetricEncodingBuilds] != 1 {
		t.Fatalf("builds = %d across the whole stream, want 1", snap.Counters[MetricEncodingBuilds])
	}
	if snap.Counters[MetricStreamFrames] != 2 || snap.Counters[MetricStreamEntries] != 2 {
		t.Fatalf("frames/entries = %d/%d, want 2/2",
			snap.Counters[MetricStreamFrames], snap.Counters[MetricStreamEntries])
	}
}

// mustHello dials and handshakes, retrying briefly while the previous
// connection's busy claim is being released, and asserts the resume
// position.
func mustHello(t testing.TB, addr string, hello StreamHello, wantNext int) *StreamClient {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		sc, err := DialStream(addr, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		ack, herr := sc.Hello(hello)
		if herr == nil {
			if ack.NextTraceCycle != wantNext {
				t.Fatalf("resume position %d, want %d", ack.NextTraceCycle, wantNext)
			}
			return sc
		}
		sc.Close()
		if time.Now().After(deadline) {
			t.Fatalf("hello never accepted: %v", herr)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestStreamFailureDiscipline pins the failure split: a busy stream
// refuses a second connection, a corrupt frame answers 400 and closes
// without advancing the position, and a reconnect under a different
// spec is refused.
func TestStreamFailureDiscipline(t *testing.T) {
	const m, b = 16, 9
	wire, _ := testLog(t, m, b, 3)
	badGeometry, _ := testLog(t, 32, 11, 2)
	_, streamAddr, reg := startStreamServer(t, Config{Workers: 2})
	hello := StreamHello{Device: "dev1", Signal: "sig", Encoding: EncodingSpec{M: m, B: b}}

	sc, err := DialStream(streamAddr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Hello(hello); err != nil {
		t.Fatal(err)
	}
	// Busy: a second live connection for the same (device, signal).
	sc2, err := DialStream(streamAddr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc2.Hello(hello); err == nil || !strings.Contains(err.Error(), "live connection") {
		t.Fatalf("busy stream accepted a second connection: %v", err)
	}
	sc2.Close()

	// One good frame advances the position...
	if msg, err := sc.SendFrame(wire); err != nil || msg.Status != 0 {
		t.Fatalf("good frame: %v %+v", err, msg)
	}
	// ...then a frame with the wrong geometry answers 400 and closes.
	msg, err := sc.SendFrame(badGeometry)
	if err != nil || msg.Status != http.StatusBadRequest {
		t.Fatalf("bad-geometry frame: %v %+v", err, msg)
	}
	if _, err := sc.SendFrame(wire); err == nil {
		t.Fatal("connection survived a corrupt frame")
	}
	sc.Close()
	if got := reg.Snapshot().Counters[MetricStreamFrameErrors]; got != 1 {
		t.Fatalf("frame errors = %d, want 1", got)
	}

	// Reconnect resumes past the good frame only; a different spec for
	// the same stream is refused.
	sc3 := mustHello(t, streamAddr, hello, 1)
	sc3.Close()
	other := hello
	other.Encoding = EncodingSpec{Scheme: "random", M: m, B: b, Seed: 3}
	deadline := time.Now().Add(5 * time.Second)
	for {
		sc4, err := DialStream(streamAddr, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		_, herr := sc4.Hello(other)
		sc4.Close()
		if herr != nil && strings.Contains(herr.Error(), "different encoding spec") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("spec mismatch never refused: %v", herr)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// A hello without a device/signal identity is rejected outright.
	sc5, err := DialStream(streamAddr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc5.Hello(StreamHello{}); err == nil {
		t.Fatal("empty hello accepted")
	}
	sc5.Close()
}

// TestStreamDrain pins shutdown behavior: a connection idle between
// frames is woken and told the server is draining, and Shutdown
// returns cleanly.
func TestStreamDrain(t *testing.T) {
	const m, b = 16, 9
	wire, _ := testLog(t, m, b, 3)
	srv, streamAddr, _ := startStreamServer(t, Config{Workers: 2})
	sc, err := DialStream(streamAddr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if _, err := sc.Hello(StreamHello{Device: "d", Signal: "s", Encoding: EncodingSpec{M: m, B: b}}); err != nil {
		t.Fatal(err)
	}
	if msg, err := sc.SendFrame(wire); err != nil || msg.Status != 0 {
		t.Fatalf("frame: %v %+v", err, msg)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown with an idle stream connection: %v", err)
	}
	msg, err := sc.readMsg()
	if err != nil || msg.State != "draining" {
		t.Fatalf("draining goodbye: %v %+v", err, msg)
	}
}
