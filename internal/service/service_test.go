package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/obs"
)

func TestAdmissionBoundsQueueExactly(t *testing.T) {
	reg := obs.NewRegistry()
	a := newAdmission(2, 1, reg) // 1 worker, 2 may wait

	release1, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Two waiters fit; the third must shed synchronously.
	type got struct {
		release func()
		err     error
	}
	waiters := make(chan got, 2)
	var started sync.WaitGroup
	for i := 0; i < 2; i++ {
		started.Add(1)
		go func() {
			started.Done()
			r, err := a.acquire(context.Background())
			waiters <- got{r, err}
		}()
	}
	started.Wait()
	deadline := time.Now().Add(2 * time.Second)
	for a.waiting.Load() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("waiting = %d, want 2", a.waiting.Load())
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := a.acquire(context.Background()); !errors.Is(err, errQueueFull) {
		t.Fatalf("overflow acquire: err = %v, want errQueueFull", err)
	}
	if got := reg.Snapshot().Counters[MetricShed]; got != 1 {
		t.Fatalf("%s = %d, want 1", MetricShed, got)
	}

	// Releasing the worker lets the waiters through one at a time.
	release1()
	g := <-waiters
	if g.err != nil {
		t.Fatal(g.err)
	}
	g.release()
	g = <-waiters
	if g.err != nil {
		t.Fatal(g.err)
	}
	g.release()

	snap := reg.Snapshot()
	if q := snap.Gauges[MetricQueueDepth]; q.Value != 0 {
		t.Fatalf("queue gauge = %d after drain, want 0", q.Value)
	}
	if b := snap.Gauges[MetricSolveBusy]; b.Value != 0 {
		t.Fatalf("busy gauge = %d after drain, want 0", b.Value)
	}
}

func TestAdmissionHonorsContextWhileQueued(t *testing.T) {
	a := newAdmission(4, 1, nil)
	release, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := a.acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued acquire: err = %v, want DeadlineExceeded", err)
	}
	if w := a.waiting.Load(); w != 0 {
		t.Fatalf("waiting = %d after queued acquire expired, want 0", w)
	}
}

func TestLRUCacheEvictsAndCounts(t *testing.T) {
	reg := obs.NewRegistry()
	c := newLRUCache(2, reg)
	c.add("a", solveResult{Count: 1})
	c.add("b", solveResult{Count: 2})
	if _, ok := c.get("a"); !ok { // bump a: b is now LRU
		t.Fatal("a missing")
	}
	c.add("c", solveResult{Count: 3}) // evicts b
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if res, ok := c.get("a"); !ok || res.Count != 1 {
		t.Fatalf("a = (%v, %v)", res, ok)
	}
	snap := reg.Snapshot()
	if snap.Counters[MetricCacheHits] != 2 || snap.Counters[MetricCacheMisses] != 1 || snap.Counters[MetricCacheEvicted] != 1 {
		t.Fatalf("hits/misses/evicted = %d/%d/%d, want 2/1/1",
			snap.Counters[MetricCacheHits], snap.Counters[MetricCacheMisses], snap.Counters[MetricCacheEvicted])
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}

func TestFlightGroupCoalesces(t *testing.T) {
	g := newFlightGroup()
	gate := make(chan struct{})
	var runs atomic.Int32
	fn := func() (solveResult, error) {
		runs.Add(1)
		<-gate
		return solveResult{Count: 7}, nil
	}

	const followers = 8
	type got struct {
		res    solveResult
		shared bool
		err    error
	}
	results := make(chan got, followers+1)
	run := func() {
		res, shared, err := g.do(context.Background(), "k", fn)
		results <- got{res, shared, err}
	}
	go run()
	// Wait for the leader to register, then pile on followers and give
	// them time to block on the in-flight call before releasing it.
	for {
		g.mu.Lock()
		_, inFlight := g.calls["k"]
		g.mu.Unlock()
		if inFlight {
			break
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < followers; i++ {
		go run()
	}
	time.Sleep(100 * time.Millisecond)
	close(gate)

	var sharedCount int
	for i := 0; i < followers+1; i++ {
		r := <-results
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.res.Count != 7 {
			t.Fatalf("res = %v", r.res)
		}
		if r.shared {
			sharedCount++
		}
	}
	if n := runs.Load(); n != 1 {
		t.Fatalf("fn ran %d times for %d concurrent callers, want 1", n, followers+1)
	}
	if sharedCount != followers {
		t.Fatalf("shared = %d, want %d", sharedCount, followers)
	}
}

func TestFlightGroupFollowerDeadline(t *testing.T) {
	g := newFlightGroup()
	gate := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		_, _, _ = g.do(context.Background(), "k", func() (solveResult, error) {
			<-gate
			return solveResult{}, nil
		})
	}()
	for {
		g.mu.Lock()
		_, inFlight := g.calls["k"]
		g.mu.Unlock()
		if inFlight {
			break
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, shared, err := g.do(ctx, "k", func() (solveResult, error) {
		t.Error("follower must not run fn")
		return solveResult{}, nil
	})
	if !shared || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("follower: shared=%v err=%v, want shared deadline error", shared, err)
	}
	close(gate) // the leader's solve was unaffected
	<-leaderDone
}

func TestEncodingSpecNormalize(t *testing.T) {
	cases := []struct {
		in      EncodingSpec
		wantErr bool
		check   func(EncodingSpec) error
	}{
		{in: EncodingSpec{M: 16, B: 9}, check: func(sp EncodingSpec) error {
			if sp.Scheme != "incremental" || sp.Depth != 4 {
				return fmt.Errorf("defaults not applied: %+v", sp)
			}
			return nil
		}},
		{in: EncodingSpec{Scheme: "binary", M: 20}, check: func(sp EncodingSpec) error {
			if sp.B != 5 { // bits.Len(20) = 5
				return fmt.Errorf("binary b = %d, want 5", sp.B)
			}
			return nil
		}},
		{in: EncodingSpec{Scheme: "one-hot", M: 6}, check: func(sp EncodingSpec) error {
			if sp.Scheme != "onehot" || sp.B != 6 {
				return fmt.Errorf("onehot: %+v", sp)
			}
			return nil
		}},
		{in: EncodingSpec{Scheme: "explicit", Timestamps: []string{"101", "011"}}, check: func(sp EncodingSpec) error {
			if sp.M != 2 || sp.B != 3 {
				return fmt.Errorf("explicit m,b = %d,%d, want 2,3", sp.M, sp.B)
			}
			return nil
		}},
		{in: EncodingSpec{Scheme: "random-constrained", M: 16, B: 9, Seed: 3}, check: func(sp EncodingSpec) error {
			if sp.Scheme != "random" {
				return fmt.Errorf("alias not folded: %q", sp.Scheme)
			}
			return nil
		}},
		{in: EncodingSpec{Scheme: "nonsense", M: 4, B: 4}, wantErr: true},
		{in: EncodingSpec{Scheme: "incremental"}, wantErr: true},    // no m/b
		{in: EncodingSpec{Scheme: "explicit"}, wantErr: true},       // no timestamps
		{in: EncodingSpec{M: 16, B: 9, ClockHz: -1}, wantErr: true}, // negative clock
		{in: EncodingSpec{Scheme: "binary"}, wantErr: true},         // no m
	}
	for i, tc := range cases {
		got, err := tc.in.normalize()
		if tc.wantErr {
			if err == nil {
				t.Fatalf("case %d: no error for %+v", i, tc.in)
			}
			continue
		}
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if tc.check != nil {
			if err := tc.check(got); err != nil {
				t.Fatalf("case %d: %v", i, err)
			}
		}
	}
}

func TestSessionTableSharesAndEvicts(t *testing.T) {
	reg := obs.NewRegistry()
	tbl := newSessionTable(2, reg)
	spec := func(m int) EncodingSpec {
		sp, err := EncodingSpec{M: m, B: 9}.normalize()
		if err != nil {
			t.Fatal(err)
		}
		return sp
	}
	a1 := tbl.get(spec(12))
	a2 := tbl.get(spec(12))
	if a1 != a2 {
		t.Fatal("identical specs got distinct sessions")
	}
	tbl.get(spec(13))
	tbl.get(spec(14)) // evicts spec(12), the LRU
	if got := reg.Snapshot().Gauges[MetricSessions]; got.Value != 2 {
		t.Fatalf("sessions gauge = %d, want 2", got.Value)
	}
	if a3 := tbl.get(spec(12)); a3 == a1 {
		t.Fatal("evicted session resurrected instead of rebuilt")
	}
}

func TestCacheKeySeparatesQueries(t *testing.T) {
	entry := core.LogEntry{TP: bitvec.FromUint(0b1011, 9), K: 2}
	base := cacheKey("sess", entry, "", 16, false)
	for name, other := range map[string]string{
		"different session": cacheKey("sess2", entry, "", 16, false),
		"different k":       cacheKey("sess", core.LogEntry{TP: entry.TP, K: 3}, "", 16, false),
		"different props":   cacheKey("sess", entry, "mingap(3)", 16, false),
		"different limit":   cacheKey("sess", entry, "", 17, false),
		"count vs enum":     cacheKey("sess", entry, "", 16, true),
	} {
		if other == base {
			t.Fatalf("%s: cache keys collide", name)
		}
	}
	if again := cacheKey("sess", entry, "", 16, false); again != base {
		t.Fatal("cache key not deterministic")
	}
}

func TestTimeoutResolution(t *testing.T) {
	s := New(Config{DefaultTimeout: 2 * time.Second, MaxTimeout: 5 * time.Second})
	if d := s.timeout(0); d != 2*time.Second {
		t.Fatalf("default = %v", d)
	}
	if d := s.timeout(1000); d != time.Second {
		t.Fatalf("requested = %v", d)
	}
	if d := s.timeout(60_000); d != 5*time.Second {
		t.Fatalf("cap = %v", d)
	}
}
