package service

import (
	"bytes"
	"encoding/base64"
	"fmt"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/core"
)

// FuzzBatchRequest throws arbitrary bytes at the whole batch parsing
// pipeline — JSON decode, spec resolution, per-job planning (which
// embeds the wire-format reader and the property/bitvec parsers) — and
// asserts it never panics and never accepts a structurally invalid
// batch.
func FuzzBatchRequest(f *testing.F) {
	// A well-formed wire log for log-carrying seeds.
	var wire bytes.Buffer
	if err := core.WriteLog(&wire, 16, 8, []core.LogEntry{
		{TP: bitvec.FromUint(0xA5, 8), K: 2},
		{TP: bitvec.FromUint(0x3C, 8), K: 16}, // k = m boundary
	}); err != nil {
		f.Fatal(err)
	}
	logB64 := base64.StdEncoding.EncodeToString(wire.Bytes())

	seeds := []string{
		// Valid: inline TP/k jobs on an explicit spec.
		`{"encoding":{"m":16,"b":8},"jobs":[{"tp":"10100101","k":2},{"tp":"00111100","k":3,"count_only":true}]}`,
		// Valid: wire-log job, spec borrowed from the log header.
		fmt.Sprintf(`{"jobs":[{"log":%q,"cycles":[0,1]}]}`, logB64),
		// Valid: properties and limits.
		`{"encoding":{"m":16,"b":8},"jobs":[{"tp":"10100101","k":2,"properties":"mingap(3)","limit":-1}]}`,
		// Corrupt wire payload inside valid JSON.
		`{"jobs":[{"log":"VFBSMWdhcmJhZ2U="}]}`,
		// Structural rejections.
		`{"encoding":{"m":16,"b":8},"jobs":[]}`,
		`{"jobs":[{"tp":"101","k":1},{"bogus":true}]}`,
		`{"encoding":{"m":16,"b":8},"jobs":[{"tp":"101","k":1}]}garbage`,
		`{"encoding":{"scheme":"nope","m":4,"b":2},"jobs":[{"tp":"10","k":1}]}`,
		`not json at all`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		const maxJobs = 64
		req, err := parseBatchRequest(data, maxJobs)
		if err != nil {
			return
		}
		if len(req.Jobs) == 0 || len(req.Jobs) > maxJobs {
			t.Fatalf("parse accepted %d jobs outside (0, %d]", len(req.Jobs), maxJobs)
		}
		spec, err := resolveBatchSpec(req)
		if err != nil {
			return
		}
		if spec.M <= 0 || spec.B <= 0 {
			t.Fatalf("resolved spec has non-positive geometry: m=%d b=%d", spec.M, spec.B)
		}
		for i, job := range req.Jobs {
			p := planBatchJob(spec, job)
			if p.err != nil {
				continue
			}
			if len(p.items) == 0 {
				t.Fatalf("job %d planned with no work items and no error", i)
			}
			for _, it := range p.items {
				if it.entry.TP.Width() != spec.B {
					t.Fatalf("job %d planned a TP of width %d under b=%d", i, it.entry.TP.Width(), spec.B)
				}
			}
		}
	})
}
