package monitor

import (
	"testing"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/properties"
	"repro/internal/reconstruct"
	"repro/internal/rtl"
)

// exhaustiveAgainstProperty validates an FSM against its property's
// Holds over every signal of length m.
func exhaustiveAgainstProperty(t *testing.T, mk func() FSM, m int) {
	t.Helper()
	for mask := uint64(0); mask < 1<<uint(m); mask++ {
		s := core.SignalFromVector(bitvec.FromUint(mask, m))
		f := mk()
		got := CheckSignal(f, s)
		want := f.Property().Holds(s)
		if got != want {
			t.Fatalf("%s on %s: fsm %v, property %v", f, s, got, want)
		}
	}
}

func TestDkFSM(t *testing.T) {
	exhaustiveAgainstProperty(t, func() FSM { return NewDk(6, 2) }, 10)
	exhaustiveAgainstProperty(t, func() FSM { return NewDk(10, 0) }, 10)
}

func TestMinGapFSM(t *testing.T) {
	exhaustiveAgainstProperty(t, func() FSM { return NewMinGap(3) }, 10)
	exhaustiveAgainstProperty(t, func() FSM { return NewMinGap(1) }, 8)
}

func TestWindowFSM(t *testing.T) {
	exhaustiveAgainstProperty(t, func() FSM { return NewWindow(2, 7) }, 10)
	exhaustiveAgainstProperty(t, func() FSM { return NewWindow(0, 10) }, 10)
}

func TestPairedChangesFSM(t *testing.T) {
	exhaustiveAgainstProperty(t, func() FSM { return NewPairedChanges() }, 12)
}

func TestPeriodicFSM(t *testing.T) {
	exhaustiveAgainstProperty(t, func() FSM { return NewPeriodic(4, 1) }, 12)
	exhaustiveAgainstProperty(t, func() FSM { return NewPeriodic(3, 0) }, 10)
}

func TestResponseFSM(t *testing.T) {
	mk := func(u int) func() FSM {
		return func() FSM {
			f, err := NewResponse(u)
			if err != nil {
				t.Fatal(err)
			}
			return f
		}
	}
	exhaustiveAgainstProperty(t, mk(2), 10)
	exhaustiveAgainstProperty(t, mk(4), 10)
	if _, err := NewResponse(0); err == nil {
		t.Error("U=0 accepted")
	}
}

func TestMonitorSegmentsTraceCycles(t *testing.T) {
	mon := New(NewDk(4, 1), 8)
	// Trace-cycle 0: change at cycle 2 (satisfied); trace-cycle 1: no
	// early change (violated).
	pattern := []bool{false, false, true, false, false, false, false, false,
		false, false, false, false, false, true, false, false}
	var boundaries int
	for _, c := range pattern {
		if _, done := mon.Tick(c); done {
			boundaries++
		}
	}
	if boundaries != 2 {
		t.Fatalf("%d boundaries", boundaries)
	}
	vs := mon.Verdicts()
	if len(vs) != 2 || !vs[0].Satisfied || vs[1].Satisfied {
		t.Fatalf("verdicts %+v", vs)
	}
}

func TestFSMStateResetBetweenTraceCycles(t *testing.T) {
	// A violation in trace-cycle 0 must not leak into trace-cycle 1.
	mon := New(NewMinGap(4), 8)
	// tc0: changes at 1,2 (violated); tc1: changes at 0,6 (ok).
	pattern := []bool{false, true, true, false, false, false, false, false,
		true, false, false, false, false, false, true, false}
	for _, c := range pattern {
		mon.Tick(c)
	}
	vs := mon.Verdicts()
	if vs[0].Satisfied || !vs[1].Satisfied {
		t.Fatalf("verdicts %+v", vs)
	}
}

func TestConstraintsOnlyWhenSatisfied(t *testing.T) {
	mon := New(NewDk(4, 1), 8)
	pattern := []bool{false, false, true, false, false, false, false, false, // satisfied
		false, false, false, false, false, false, false, false} // violated
	for _, c := range pattern {
		mon.Tick(c)
	}
	if cs := mon.Constraints(0); len(cs) != 1 {
		t.Error("satisfied trace-cycle yields no constraint")
	}
	if cs := mon.Constraints(1); cs != nil {
		t.Error("violated trace-cycle yields a constraint")
	}
	if cs := mon.Constraints(7); cs != nil {
		t.Error("unknown trace-cycle yields a constraint")
	}
}

func TestMonitorVerdictPrunesReconstruction(t *testing.T) {
	// The paper's flow: the monitor verifies PairedChanges during the
	// run; the verdict is then encoded into the SAT query, shrinking
	// the candidate set.
	enc, err := encoding.Incremental(16, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	truth := core.SignalFromChanges(16, 3, 4, 9, 10)
	mon := New(NewPairedChanges(), 16)
	for i := 0; i < 16; i++ {
		mon.Tick(truth.Changed(i))
	}
	entry := core.Log(enc, truth)

	unpruned, err := reconstruct.New(enc, entry, nil, reconstruct.Options{})
	if err != nil {
		t.Fatal(err)
	}
	all, _ := unpruned.Enumerate(0)

	pruned, err := reconstruct.New(enc, entry, mon.Constraints(0), reconstruct.Options{})
	if err != nil {
		t.Fatal(err)
	}
	few, _ := pruned.Enumerate(0)
	if len(few) >= len(all) {
		t.Fatalf("monitor verdict did not prune: %d vs %d", len(few), len(all))
	}
	if len(few) == 0 {
		t.Fatal("pruning removed the truth")
	}
	found := false
	for _, s := range few {
		if s.Equal(truth) {
			found = true
		}
	}
	if !found {
		t.Fatal("truth not among pruned candidates")
	}
}

func TestProbeOnWire(t *testing.T) {
	sim := rtl.NewSimulator()
	w := sim.Wire("traced", 8)
	mon := New(NewWindow(0, 4), 8)
	sim.AddProbe(NewProbe(mon, w))
	// Change the wire at committed cycles 2 and 6 of trace-cycle 0:
	// cycle 6 is outside the window -> violated.
	for i := 0; i < 8; i++ {
		if i == 1 || i == 5 { // commits at i+1
			w.Set(w.Get() + 1)
		}
		sim.Step()
	}
	vs := mon.Verdicts()
	if len(vs) != 1 || vs[0].Satisfied {
		t.Fatalf("verdicts %+v", vs)
	}
}

func TestMonitorPanicsOnBadM(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(NewDk(1, 1), 0)
}

func TestFSMProperties(t *testing.T) {
	// Property() must round-trip to the right property type.
	if _, ok := NewDk(4, 2).Property().(properties.Dk); !ok {
		t.Error("Dk property type")
	}
	if _, ok := NewPairedChanges().Property().(properties.PairedChanges); !ok {
		t.Error("PairedChanges property type")
	}
	for _, f := range []FSM{NewDk(4, 2), NewMinGap(2), NewWindow(0, 4), NewPairedChanges(), NewPeriodic(4, 1)} {
		if f.String() == "" {
			t.Error("empty monitor name")
		}
	}
}
