// Package monitor implements synthesizable runtime-verification
// monitors — the "RV monitors" of the paper's Figures 1–3 that run on
// chip next to the timeprints agg-log hardware. Each monitor is a
// constant-state FSM over the traced signal's change events, segmented
// into the same trace-cycles as the logger, and emits one verdict per
// trace-cycle.
//
// The methodological link to timeprints (Section 2): properties whose
// monitors report satisfaction are *verified* for that trace-cycle and
// may be encoded into the reconstruction SAT query to prune the search
// space — Verdicts.Constraints does exactly that.
package monitor

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/properties"
	"repro/internal/reconstruct"
	"repro/internal/rtl"
)

// FSM is an online checker with constant state: it consumes one
// change-event flag per clock-cycle and produces a verdict at the
// trace-cycle boundary, after which it must be reset.
type FSM interface {
	// Step consumes clock-cycle `cycle` (position within the
	// trace-cycle) with its change flag.
	Step(cycle int, changed bool)
	// Finish returns the trace-cycle verdict for a trace-cycle of m
	// clock-cycles and resets the state.
	Finish(m int) bool
	// Property returns the checked property (for reconstruction use).
	Property() properties.Property
	// String names the monitor.
	String() string
}

// Verdict is one trace-cycle outcome.
type Verdict struct {
	TraceCycle int
	Satisfied  bool
}

// Monitor drives an FSM over a change stream segmented into
// trace-cycles of length m.
type Monitor struct {
	fsm      FSM
	m        int
	cycle    int
	tc       int
	verdicts []Verdict
}

// New wraps an FSM for trace-cycles of length m.
func New(fsm FSM, m int) *Monitor {
	if m < 1 {
		panic(fmt.Sprintf("monitor: m=%d", m))
	}
	return &Monitor{fsm: fsm, m: m}
}

// Tick consumes one clock-cycle's change flag; it returns the verdict
// and true when this tick closed a trace-cycle.
func (mo *Monitor) Tick(changed bool) (Verdict, bool) {
	mo.fsm.Step(mo.cycle, changed)
	mo.cycle++
	if mo.cycle == mo.m {
		v := Verdict{TraceCycle: mo.tc, Satisfied: mo.fsm.Finish(mo.m)}
		mo.verdicts = append(mo.verdicts, v)
		mo.cycle = 0
		mo.tc++
		return v, true
	}
	return Verdict{}, false
}

// Verdicts returns all completed trace-cycle verdicts.
func (mo *Monitor) Verdicts() []Verdict {
	out := make([]Verdict, len(mo.verdicts))
	copy(out, mo.verdicts)
	return out
}

// Property exposes the monitored property.
func (mo *Monitor) Property() properties.Property { return mo.fsm.Property() }

// Constraints returns the monitored property as a reconstruction
// constraint for trace-cycle tc if — and only if — the monitor
// reported satisfaction there. Unverified properties must not prune.
func (mo *Monitor) Constraints(tc int) []reconstruct.Constraint {
	for _, v := range mo.verdicts {
		if v.TraceCycle == tc && v.Satisfied {
			return []reconstruct.Constraint{mo.fsm.Property()}
		}
	}
	return nil
}

// --- FSM implementations ---

// dkFSM counts changes before the deadline.
type dkFSM struct {
	p     properties.Dk
	count int
}

// NewDk monitors "at least K changes before cycle D".
func NewDk(d, k int) FSM { return &dkFSM{p: properties.Dk{D: d, K: k}} }

func (f *dkFSM) Step(cycle int, changed bool) {
	if changed && cycle < f.p.D {
		f.count++
	}
}
func (f *dkFSM) Finish(m int) bool {
	ok := f.count >= f.p.K
	f.count = 0
	return ok
}
func (f *dkFSM) Property() properties.Property { return f.p }
func (f *dkFSM) String() string                { return "monitor:" + f.p.String() }

// minGapFSM tracks the distance since the previous change.
type minGapFSM struct {
	p        properties.MinGap
	last     int
	haveLast bool
	violated bool
}

// NewMinGap monitors "consecutive changes at least Gap cycles apart".
func NewMinGap(gap int) FSM { return &minGapFSM{p: properties.MinGap{Gap: gap}} }

func (f *minGapFSM) Step(cycle int, changed bool) {
	if !changed {
		return
	}
	if f.haveLast && cycle-f.last < f.p.Gap {
		f.violated = true
	}
	f.last = cycle
	f.haveLast = true
}
func (f *minGapFSM) Finish(m int) bool {
	ok := !f.violated
	*f = minGapFSM{p: f.p}
	return ok
}
func (f *minGapFSM) Property() properties.Property { return f.p }
func (f *minGapFSM) String() string                { return "monitor:" + f.p.String() }

// windowFSM flags changes outside [Lo, Hi).
type windowFSM struct {
	p        properties.Window
	violated bool
}

// NewWindow monitors "all changes within [lo, hi)".
func NewWindow(lo, hi int) FSM { return &windowFSM{p: properties.Window{Lo: lo, Hi: hi}} }

func (f *windowFSM) Step(cycle int, changed bool) {
	if changed && (cycle < f.p.Lo || cycle >= f.p.Hi) {
		f.violated = true
	}
}
func (f *windowFSM) Finish(m int) bool {
	ok := !f.violated
	f.violated = false
	return ok
}
func (f *windowFSM) Property() properties.Property { return f.p }
func (f *windowFSM) String() string                { return "monitor:" + f.p.String() }

// pairedFSM tracks run lengths of consecutive changes.
type pairedFSM struct {
	run      int
	violated bool
}

// NewPairedChanges monitors the Section 3.3 paired-changes shape.
func NewPairedChanges() FSM { return &pairedFSM{} }

func (f *pairedFSM) Step(cycle int, changed bool) {
	if changed {
		f.run++
		if f.run > 2 {
			f.violated = true
		}
		return
	}
	if f.run == 1 {
		f.violated = true // isolated change
	}
	f.run = 0
}
func (f *pairedFSM) Finish(m int) bool {
	if f.run == 1 {
		f.violated = true // trace-cycle ended on an isolated change
	}
	ok := !f.violated
	*f = pairedFSM{}
	return ok
}
func (f *pairedFSM) Property() properties.Property { return properties.PairedChanges{} }
func (f *pairedFSM) String() string                { return "monitor:PairedChanges" }

// periodicFSM checks change phases.
type periodicFSM struct {
	p        properties.Periodic
	violated bool
}

// NewPeriodic monitors "changes only within Jitter of Period grid".
func NewPeriodic(period, jitter int) FSM {
	return &periodicFSM{p: properties.Periodic{Period: period, Jitter: jitter}}
}

func (f *periodicFSM) Step(cycle int, changed bool) {
	if !changed {
		return
	}
	q := (cycle + f.p.Period/2) / f.p.Period
	d := cycle - q*f.p.Period
	if d < 0 {
		d = -d
	}
	if d > f.p.Jitter {
		f.violated = true
	}
}
func (f *periodicFSM) Finish(m int) bool {
	ok := !f.violated
	f.violated = false
	return ok
}
func (f *periodicFSM) Property() properties.Property { return f.p }
func (f *periodicFSM) String() string                { return "monitor:" + f.p.String() }

// responseFSM tracks the most recent unanswered change. With L = 1
// a single pending cycle is exact: every change both answers any open
// window it falls into and opens its own. (For L > 1 the property's
// overlapping windows need O(U) state; that generalization is left to
// the offline SAT compilation, which handles any [L, U].)
type responseFSM struct {
	p        properties.Response
	pending  int // cycle of the latest unanswered change, -1 none
	violated bool
}

// NewResponse monitors "every change answered within [1, U]" with
// window truncation at the trace-cycle end.
func NewResponse(u int) (FSM, error) {
	if u < 1 {
		return nil, fmt.Errorf("monitor: response bound %d invalid", u)
	}
	return &responseFSM{p: properties.Response{L: 1, U: u}, pending: -1}, nil
}

func (f *responseFSM) Step(cycle int, changed bool) {
	if f.pending >= 0 && cycle > f.pending+f.p.U {
		f.violated = true
		f.pending = -1
	}
	if changed {
		f.pending = cycle
	}
}
func (f *responseFSM) Finish(m int) bool {
	// An unanswered change is a violation only if its full window lies
	// inside the trace-cycle; windows extending past the end are
	// truncated and vacuous.
	if f.pending >= 0 && f.pending+f.p.U < m {
		f.violated = true
	}
	ok := !f.violated
	*f = responseFSM{p: f.p, pending: -1}
	return ok
}
func (f *responseFSM) Property() properties.Property { return f.p }
func (f *responseFSM) String() string                { return "monitor:" + f.p.String() }

// --- RTL integration ---

// Probe attaches a monitor to a wire: any committed value change is a
// change event, exactly as the agg-log hardware sees it. It implements
// rtl.Probe.
type Probe struct {
	mon   *Monitor
	wire  *rtl.Wire
	prev  uint64
	first bool
}

// NewProbe wires a monitor to a traced wire.
func NewProbe(mon *Monitor, wire *rtl.Wire) *Probe {
	return &Probe{mon: mon, wire: wire, first: true}
}

// Observe implements rtl.Probe.
func (p *Probe) Observe(cycle int64) {
	v := p.wire.Get()
	changed := false
	if p.first {
		p.first = false
	} else {
		changed = v != p.prev
	}
	p.prev = v
	p.mon.Tick(changed)
}

// Monitor returns the wrapped monitor.
func (p *Probe) Monitor() *Monitor { return p.mon }

// CheckSignal runs an FSM offline over a complete trace-cycle signal —
// the reference oracle the FSMs are validated against.
func CheckSignal(f FSM, s core.Signal) bool {
	for i := 0; i < s.M(); i++ {
		f.Step(i, s.Changed(i))
	}
	return f.Finish(s.M())
}
