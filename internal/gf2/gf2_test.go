package gf2

import (
	"math/rand"
	"testing"

	"repro/internal/bitvec"
)

func randVec(r *rand.Rand, w int) bitvec.Vector {
	v := bitvec.New(w)
	for i := 0; i < w; i++ {
		if r.Intn(2) == 1 {
			v.Set(i, true)
		}
	}
	return v
}

func TestFromColumnsRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	cols := make([]bitvec.Vector, 20)
	for i := range cols {
		cols[i] = randVec(r, 13)
	}
	m := FromColumns(cols)
	if m.Rows() != 13 || m.Cols() != 20 {
		t.Fatalf("dims %dx%d", m.Rows(), m.Cols())
	}
	for j, c := range cols {
		if !m.Column(j).Equal(c) {
			t.Errorf("column %d mismatch", j)
		}
	}
}

func TestMulVecSelectsColumns(t *testing.T) {
	// A·e_j must equal column j; A·(e_i ^ e_j) = col_i ^ col_j.
	r := rand.New(rand.NewSource(2))
	cols := make([]bitvec.Vector, 10)
	for i := range cols {
		cols[i] = randVec(r, 8)
	}
	m := FromColumns(cols)
	for j := range cols {
		x := bitvec.FromOnes(10, j)
		if !m.MulVec(x).Equal(cols[j]) {
			t.Errorf("A·e_%d != col %d", j, j)
		}
	}
	x := bitvec.FromOnes(10, 2, 7)
	if !m.MulVec(x).Equal(cols[2].Xor(cols[7])) {
		t.Error("A·(e2^e7) != col2^col7")
	}
}

func TestRankBasics(t *testing.T) {
	// Identity has full rank.
	id := NewMatrix(5, 5)
	for i := 0; i < 5; i++ {
		id.Set(i, i, true)
	}
	if got := id.Rank(); got != 5 {
		t.Errorf("identity rank %d", got)
	}
	// Zero matrix has rank 0.
	if got := NewMatrix(4, 6).Rank(); got != 0 {
		t.Errorf("zero rank %d", got)
	}
	// Duplicated row halves rank.
	m := FromRows([]bitvec.Vector{
		bitvec.FromOnes(4, 0, 1),
		bitvec.FromOnes(4, 0, 1),
		bitvec.FromOnes(4, 2),
	})
	if got := m.Rank(); got != 2 {
		t.Errorf("rank %d want 2", got)
	}
}

func TestIsLinearlyIndependent(t *testing.T) {
	a := bitvec.FromOnes(4, 0)
	b := bitvec.FromOnes(4, 1)
	c := bitvec.FromOnes(4, 0, 1) // a ^ b
	if !IsLinearlyIndependent([]bitvec.Vector{a, b}) {
		t.Error("a,b should be independent")
	}
	if IsLinearlyIndependent([]bitvec.Vector{a, b, c}) {
		t.Error("a,b,a^b should be dependent")
	}
	if !IsLinearlyIndependent(nil) {
		t.Error("empty set is independent")
	}
	if IsLinearlyIndependent([]bitvec.Vector{bitvec.New(4)}) {
		t.Error("zero vector alone is dependent")
	}
}

func TestSolveConsistent(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		b := 4 + r.Intn(10)
		n := 4 + r.Intn(12)
		cols := make([]bitvec.Vector, n)
		for i := range cols {
			cols[i] = randVec(r, b)
		}
		m := FromColumns(cols)
		// Construct y from a known solution so the system is consistent.
		x0 := randVec(r, n)
		y := m.MulVec(x0)
		sys, ok := m.Solve(y)
		if !ok {
			t.Fatal("consistent system reported unsolvable")
		}
		if !m.MulVec(sys.Particular).Equal(y) {
			t.Fatal("particular solution does not satisfy system")
		}
		for _, v := range sys.Nullspace {
			if !m.MulVec(v).IsZero() {
				t.Fatal("nullspace vector not in kernel")
			}
		}
		if sys.Rank+sys.Nullity() != n {
			t.Fatalf("rank-nullity violated: %d + %d != %d", sys.Rank, sys.Nullity(), n)
		}
		if !IsLinearlyIndependent(sys.Nullspace) {
			t.Fatal("nullspace basis not independent")
		}
	}
}

func TestSolveInconsistent(t *testing.T) {
	// Rows: e0, e0 — then y = (1,0) is inconsistent (x0=1 and x0=0).
	m := FromRows([]bitvec.Vector{bitvec.FromOnes(3, 0), bitvec.FromOnes(3, 0)})
	y := bitvec.FromOnes(2, 0)
	if _, ok := m.Solve(y); ok {
		t.Error("inconsistent system reported solvable")
	}
	// Same matrix with y = (1,1) is consistent.
	if _, ok := m.Solve(bitvec.FromOnes(2, 0, 1)); !ok {
		t.Error("consistent system reported unsolvable")
	}
}

func TestEnumerateSolutionsCompleteAndDistinct(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	cols := make([]bitvec.Vector, 10)
	for i := range cols {
		cols[i] = randVec(r, 6)
	}
	m := FromColumns(cols)
	x0 := randVec(r, 10)
	y := m.MulVec(x0)
	sys, ok := m.Solve(y)
	if !ok {
		t.Fatal("unsolvable")
	}
	seen := map[string]bool{}
	sys.EnumerateSolutions(0, func(x bitvec.Vector) bool {
		if seen[x.Key()] {
			t.Fatal("duplicate solution")
		}
		seen[x.Key()] = true
		if !m.MulVec(x).Equal(y) {
			t.Fatal("enumerated non-solution")
		}
		return true
	})
	if int64(len(seen)) != sys.SolutionCount() {
		t.Fatalf("enumerated %d, expected %d", len(seen), sys.SolutionCount())
	}
	if !seen[x0.Key()] {
		t.Error("original solution not enumerated")
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	m := NewMatrix(1, 5) // zero matrix: all 2^5 vectors solve Ax=0
	sys, _ := m.Solve(bitvec.New(1))
	n := 0
	sys.EnumerateSolutions(0, func(bitvec.Vector) bool {
		n++
		return n < 7
	})
	if n != 7 {
		t.Errorf("early stop after %d", n)
	}
}

func TestEnumerateNullityGuard(t *testing.T) {
	m := NewMatrix(1, 40)
	sys, _ := m.Solve(bitvec.New(1))
	defer func() {
		if recover() == nil {
			t.Error("expected panic for nullity over limit")
		}
	}()
	sys.EnumerateSolutions(0, func(bitvec.Vector) bool { return true })
}

func TestSolutionCountOverflow(t *testing.T) {
	m := NewMatrix(1, 70)
	sys, _ := m.Solve(bitvec.New(1))
	if sys.SolutionCount() != -1 {
		t.Errorf("expected overflow sentinel, got %d", sys.SolutionCount())
	}
}

func TestRankOfAgainstBruteForce(t *testing.T) {
	// For small dimensions, rank r means exactly 2^r distinct subset sums.
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 1 + r.Intn(8)
		vecs := make([]bitvec.Vector, n)
		for i := range vecs {
			vecs[i] = randVec(r, 6)
		}
		rank := RankOf(vecs)
		sums := map[string]bool{}
		for mask := 0; mask < 1<<n; mask++ {
			s := bitvec.New(6)
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					s.XorInPlace(vecs[i])
				}
			}
			sums[s.Key()] = true
		}
		if len(sums) != 1<<rank {
			t.Fatalf("rank %d but %d distinct subset sums", rank, len(sums))
		}
	}
}
