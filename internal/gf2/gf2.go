// Package gf2 provides linear algebra over F2, the two-element field.
//
// The timeprints method reduces signal reconstruction to solving the
// linear system A·x = TP over F2, where the columns of A are the encoded
// timestamps of a trace-cycle. This package supplies the matrix
// machinery: Gaussian elimination, rank, solvability, a particular
// solution, a nullspace basis, and exhaustive solution enumeration used
// as the brute-force baseline against which the SAT-based reconstructor
// is validated.
package gf2

import (
	"fmt"

	"repro/internal/bitvec"
)

// Matrix is a dense matrix over F2 with rows stored as bit vectors.
// Row vectors all have width Cols.
type Matrix struct {
	rows []bitvec.Vector
	cols int
}

// NewMatrix returns a zero matrix with the given dimensions.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("gf2: negative dimension %dx%d", rows, cols))
	}
	m := &Matrix{rows: make([]bitvec.Vector, rows), cols: cols}
	for i := range m.rows {
		m.rows[i] = bitvec.New(cols)
	}
	return m
}

// FromColumns builds the b×m matrix whose i-th column is cols[i]. All
// columns must share the same width b. This is the paper's
// A = [TS(1) | … | TS(m)] construction.
func FromColumns(cols []bitvec.Vector) *Matrix {
	if len(cols) == 0 {
		return NewMatrix(0, 0)
	}
	b := cols[0].Width()
	m := NewMatrix(b, len(cols))
	for i, c := range cols {
		if c.Width() != b {
			panic(fmt.Sprintf("gf2: column %d has width %d, want %d", i, c.Width(), b))
		}
		for _, j := range c.Ones() {
			m.rows[j].Set(i, true)
		}
	}
	return m
}

// FromRows builds a matrix from copies of the given row vectors, which
// must all share one width.
func FromRows(rows []bitvec.Vector) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	w := rows[0].Width()
	m := &Matrix{rows: make([]bitvec.Vector, len(rows)), cols: w}
	for i, r := range rows {
		if r.Width() != w {
			panic(fmt.Sprintf("gf2: row %d has width %d, want %d", i, r.Width(), w))
		}
		m.rows[i] = r.Clone()
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return len(m.rows) }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// Get reports entry (i, j).
func (m *Matrix) Get(i, j int) bool { return m.rows[i].Get(j) }

// Set assigns entry (i, j).
func (m *Matrix) Set(i, j int, v bool) { m.rows[i].Set(j, v) }

// Row returns a copy of row i.
func (m *Matrix) Row(i int) bitvec.Vector { return m.rows[i].Clone() }

// Column returns column j as a fresh vector of width Rows().
func (m *Matrix) Column(j int) bitvec.Vector {
	c := bitvec.New(len(m.rows))
	for i := range m.rows {
		if m.rows[i].Get(j) {
			c.Set(i, true)
		}
	}
	return c
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := &Matrix{rows: make([]bitvec.Vector, len(m.rows)), cols: m.cols}
	for i, r := range m.rows {
		out.rows[i] = r.Clone()
	}
	return out
}

// MulVec returns A·x over F2; x must have width Cols(). The result has
// width Rows(). Entry i is the parity of the AND of row i with x.
func (m *Matrix) MulVec(x bitvec.Vector) bitvec.Vector {
	if x.Width() != m.cols {
		panic(fmt.Sprintf("gf2: MulVec width %d, want %d", x.Width(), m.cols))
	}
	out := bitvec.New(len(m.rows))
	for i, r := range m.rows {
		if r.And(x).PopCount()%2 == 1 {
			out.Set(i, true)
		}
	}
	return out
}

// Rank computes the rank of m by Gaussian elimination on a copy.
func (m *Matrix) Rank() int {
	cp := m.Clone()
	rank, _ := cp.rowReduce(bitvec.Vector{})
	return rank
}

// rowReduce transforms m in place to reduced row-echelon form, applying
// the same row operations to rhs when rhs is non-nil (one bit per row).
// It returns the rank and the pivot column of each of the first rank
// rows.
func (m *Matrix) rowReduce(rhs bitvec.Vector) (rank int, pivots []int) {
	r := 0
	for c := 0; c < m.cols && r < len(m.rows); c++ {
		// Find a pivot at or below row r in column c.
		p := -1
		for i := r; i < len(m.rows); i++ {
			if m.rows[i].Get(c) {
				p = i
				break
			}
		}
		if p == -1 {
			continue
		}
		m.rows[r], m.rows[p] = m.rows[p], m.rows[r]
		if rhs.Width() > 0 && p != r {
			pr, rr := rhs.Get(p), rhs.Get(r)
			rhs.Set(p, rr)
			rhs.Set(r, pr)
		}
		// Eliminate column c from every other row.
		for i := 0; i < len(m.rows); i++ {
			if i != r && m.rows[i].Get(c) {
				m.rows[i].XorInPlace(m.rows[r])
				if rhs.Width() > 0 && rhs.Get(r) {
					rhs.Flip(i)
				}
			}
		}
		pivots = append(pivots, c)
		r++
	}
	return r, pivots
}

// RankOf returns the rank of the set of vectors, treated as rows.
func RankOf(vecs []bitvec.Vector) int {
	if len(vecs) == 0 {
		return 0
	}
	return FromRows(vecs).Rank()
}

// IsLinearlyIndependent reports whether the given vectors are linearly
// independent over F2.
func IsLinearlyIndependent(vecs []bitvec.Vector) bool {
	return RankOf(vecs) == len(vecs)
}

// System is the outcome of solving A·x = y over F2: a particular
// solution plus a basis of the nullspace of A. Every solution is
// Particular XOR a subset-sum of Nullspace.
type System struct {
	// Particular is one solution of A·x = y (width = number of columns).
	Particular bitvec.Vector
	// Nullspace is a basis of {x : A·x = 0}.
	Nullspace []bitvec.Vector
	// Rank is the rank of A.
	Rank int
}

// Solve solves A·x = y over F2. It returns the solution structure and
// ok=false when the system is inconsistent.
func (m *Matrix) Solve(y bitvec.Vector) (System, bool) {
	if y.Width() != len(m.rows) {
		panic(fmt.Sprintf("gf2: Solve rhs width %d, want %d", y.Width(), len(m.rows)))
	}
	cp := m.Clone()
	rhs := y.Clone()
	rank, pivots := cp.rowReduce(rhs)

	// Inconsistent if a zero row has rhs 1.
	for i := rank; i < len(cp.rows); i++ {
		if rhs.Get(i) {
			return System{}, false
		}
	}

	isPivot := make([]bool, m.cols)
	pivotRow := make([]int, m.cols)
	for r, c := range pivots {
		isPivot[c] = true
		pivotRow[c] = r
	}

	// Particular solution: free variables 0, pivot variables from rhs.
	part := bitvec.New(m.cols)
	for r, c := range pivots {
		if rhs.Get(r) {
			part.Set(c, true)
		}
	}

	// Nullspace basis: one vector per free column f, with x_f = 1 and
	// pivot variables set to cancel column f.
	var basis []bitvec.Vector
	for f := 0; f < m.cols; f++ {
		if isPivot[f] {
			continue
		}
		v := bitvec.New(m.cols)
		v.Set(f, true)
		for _, c := range pivots {
			if cp.rows[pivotRow[c]].Get(f) {
				v.Set(c, true)
			}
		}
		basis = append(basis, v)
	}
	return System{Particular: part, Nullspace: basis, Rank: rank}, true
}

// Echelon is the reduced row-echelon form of an augmented system
// [A | y]: the nonzero rows after Gaussian elimination together with
// their transformed right-hand sides and pivot columns. It is the
// presolve view of a linear system — redundant rows are gone, unit
// rows expose forced variables, and inconsistency is decided outright.
type Echelon struct {
	// Rows are the Rank nonzero reduced rows (width = Cols of A).
	Rows []bitvec.Vector
	// RHS[i] is the right-hand side of Rows[i].
	RHS []bool
	// Pivots[i] is the pivot column of Rows[i] (strictly increasing).
	Pivots []int
	// Rank is the rank of A.
	Rank int
	// Consistent is false when elimination produced a zero row with
	// right-hand side 1 — the system has no solution.
	Consistent bool
}

// Eliminate row-reduces the augmented system [A | y] on a copy of m
// and returns its echelon form. y must have one bit per row of m.
func (m *Matrix) Eliminate(y bitvec.Vector) Echelon {
	if y.Width() != len(m.rows) {
		panic(fmt.Sprintf("gf2: Eliminate rhs width %d, want %d", y.Width(), len(m.rows)))
	}
	cp := m.Clone()
	rhs := y.Clone()
	rank, pivots := cp.rowReduce(rhs)
	e := Echelon{Rank: rank, Pivots: pivots, Consistent: true}
	for i := rank; i < len(cp.rows); i++ {
		if rhs.Get(i) {
			e.Consistent = false
			return e
		}
	}
	e.Rows = cp.rows[:rank]
	e.RHS = make([]bool, rank)
	for i := 0; i < rank; i++ {
		e.RHS[i] = rhs.Get(i)
	}
	return e
}

// Nullity returns the dimension of the solution space.
func (s System) Nullity() int { return len(s.Nullspace) }

// SolutionCount returns the total number of solutions, 2^nullity, or -1
// if that number does not fit an int64.
func (s System) SolutionCount() int64 {
	if len(s.Nullspace) >= 63 {
		return -1
	}
	return 1 << uint(len(s.Nullspace))
}

// EnumerateSolutions calls fn for every solution of the system, in Gray-
// code order starting from the particular solution. Enumeration stops
// early when fn returns false. It panics when the nullity exceeds
// maxNullity (guarding against accidental 2^large loops); pass
// maxNullity <= 0 for the default of 30.
func (s System) EnumerateSolutions(maxNullity int, fn func(bitvec.Vector) bool) {
	if maxNullity <= 0 {
		maxNullity = 30
	}
	n := len(s.Nullspace)
	if n > maxNullity {
		panic(fmt.Sprintf("gf2: nullity %d exceeds limit %d", n, maxNullity))
	}
	cur := s.Particular.Clone()
	if !fn(cur.Clone()) {
		return
	}
	// Gray-code walk: flip one basis vector per step, visiting all 2^n
	// subset sums.
	total := uint64(1) << uint(n)
	for i := uint64(1); i < total; i++ {
		// Bit that changes between Gray codes of i-1 and i.
		g := trailingZeros(i)
		cur.XorInPlace(s.Nullspace[g])
		if !fn(cur.Clone()) {
			return
		}
	}
}

func trailingZeros(x uint64) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// String renders the matrix one row per line, MSB-first per row vector.
func (m *Matrix) String() string {
	s := ""
	for i, r := range m.rows {
		if i > 0 {
			s += "\n"
		}
		s += r.LSBString()
	}
	return s
}
