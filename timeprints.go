// Package timeprints is the public API of the timeprints tracing
// library — a reproduction of "Temporal Tracing of On-Chip Signals
// using Timeprints" (Massoud et al., DAC 2019).
//
// # Concepts
//
// Tracing is organized in back-to-back trace-cycles of m clock-cycles.
// Each clock-cycle i carries a fixed b-bit encoded timestamp TS(i).
// When the traced signal changes value in cycle i, TS(i) is XORed into
// a hold register; at the end of the trace-cycle the register value —
// the timeprint TP — and the change count k are logged: a constant
// b + ⌈log2(m+1)⌉ bits per trace-cycle regardless of activity.
//
// Offline, the exact change instants are recovered by solving the
// signal reconstruction problem (all weight-k solutions of A·x = TP
// over F2) with the built-in CDCL SAT solver and its native XOR
// clauses, pruned by temporal properties known to hold.
//
// # Quick start
//
//	enc, _ := timeprints.NewEncoding(1024, 24)     // LI-4 timestamps
//	logger := timeprints.NewLogger(enc)
//	for _, v := range wireSamples {
//	    if entry, done := logger.TickValue(v); done {
//	        store(entry)                            // b+11 bits
//	    }
//	}
//	// later, in the postmortem phase:
//	rec, _ := timeprints.NewReconstructor(enc, entry, nil, timeprints.Options{})
//	signals, complete, err := rec.EnumerateStrict(0)
//
// The subpackages under internal implement the substrates: the SAT
// solver (internal/sat), F2 linear algebra (internal/gf2), the CAN bus
// model (internal/can), and the LEON3-style SoC with the agg-log
// hardware (internal/soc and friends). The examples directory shows
// the paper's didactic Figure 4 walk-through and both evaluation
// scenarios end-to-end.
package timeprints

import (
	"io"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/monitor"
	"repro/internal/properties"
	"repro/internal/reconstruct"
	"repro/internal/sat"
	"repro/internal/trace"
)

// Core types.
type (
	// Signal is a trace-cycle change-map: bit i set means the traced
	// wire changed value in clock-cycle i.
	Signal = core.Signal
	// LogEntry is the logged (TP, k) pair of one trace-cycle.
	LogEntry = core.LogEntry
	// Logger streams wire samples into log entries (the software model
	// of the agg-log hardware).
	Logger = core.Logger
	// Encoding maps clock-cycles to timestamps.
	Encoding = encoding.Encoding
	// Vector is a bit vector over F2.
	Vector = bitvec.Vector
	// Reconstructor solves the signal reconstruction problem for one
	// log entry.
	Reconstructor = reconstruct.Reconstructor
	// Options tunes the reconstruction SAT encoding.
	Options = reconstruct.Options
	// Oracle is the uniform interface over every reconstruction
	// backend (SAT, algebraic decode, GF(2) brute force, exhaustive
	// concretization, incremental session, and the dispatcher).
	Oracle = reconstruct.Oracle
	// Dispatcher routes each request to the cheapest sound backend
	// using instance features (m, k, rank, property guardability).
	Dispatcher = reconstruct.Dispatcher
	// DispatchOptions tunes the dispatcher's cost model.
	DispatchOptions = reconstruct.DispatchOptions
	// Constraint restricts reconstruction candidates; all Property
	// values implement it.
	Constraint = reconstruct.Constraint
	// Property is a temporal property usable both as a concrete
	// predicate and as a reconstruction constraint.
	Property = properties.Property
	// Store is the central database of logged timeprints.
	Store = trace.Store
	// Recorder captures a reference change trace.
	Recorder = trace.Recorder
	// Status is a SAT solver verdict (Sat / Unsat / Unknown).
	Status = sat.Status
)

// Solver verdicts.
const (
	Sat     = sat.Sat
	Unsat   = sat.Unsat
	Unknown = sat.Unknown
)

// NewEncoding generates m timestamps of width b with the paper's
// incremental heuristic, guaranteeing linear independence of depth 4.
func NewEncoding(m, b int) (*Encoding, error) {
	return encoding.Incremental(m, b, 4)
}

// NewEncodingDepth is NewEncoding with an explicit LI depth (1..4).
func NewEncodingDepth(m, b, d int) (*Encoding, error) {
	return encoding.Incremental(m, b, d)
}

// NewRandomEncoding generates m width-b LI-4 timestamps by constrained
// random draws (Section 5.1.2's alternative scheme).
func NewRandomEncoding(m, b int, seed int64) (*Encoding, error) {
	return encoding.RandomConstrained(m, b, 4, seed, 0)
}

// MinimalEncoding finds the smallest width b the incremental LI-4
// generator supports for trace-cycle length m.
func MinimalEncoding(m int) (*Encoding, error) {
	return encoding.MinimalB(m, 4, 0)
}

// OneHotEncoding returns the unambiguous b = m encoding.
func OneHotEncoding(m int) *Encoding { return encoding.OneHot(m) }

// ParseVector parses an MSB-first binary string into a bit vector
// (e.g. a timeprint retrieved from a log).
func ParseVector(s string) (Vector, error) { return bitvec.Parse(s) }

// EncodingFromStrings builds an encoding from explicit timestamps
// written MSB-first in binary (e.g. the 16 vectors of the paper's
// Figure 4). All strings must share one width; timestamps must be
// nonzero and pairwise distinct.
func EncodingFromStrings(bits []string) (*Encoding, error) {
	ts := make([]bitvec.Vector, len(bits))
	for i, s := range bits {
		v, err := bitvec.Parse(s)
		if err != nil {
			return nil, err
		}
		ts[i] = v
	}
	return encoding.FromTimestamps(ts, "explicit")
}

// NewSignal returns an all-quiet signal of length m.
func NewSignal(m int) Signal { return core.NewSignal(m) }

// SignalFromChanges builds a signal with changes at the given cycles.
func SignalFromChanges(m int, changes ...int) Signal {
	return core.SignalFromChanges(m, changes...)
}

// Log abstracts a signal to its log entry under the encoding (the
// paper's α̃).
func Log(enc *Encoding, s Signal) LogEntry { return core.Log(enc, s) }

// NewLogger returns a streaming logger.
func NewLogger(enc *Encoding) *Logger { return core.NewLogger(enc) }

// LogRate returns the logging bit-rate (bits/second) for a signal
// clocked at clockHz: (b + ⌈log2(m+1)⌉) / m · clockHz.
func LogRate(b, m int, clockHz float64) float64 { return core.LogRate(b, m, clockHz) }

// BitsPerTraceCycle returns the constant per-trace-cycle log size.
func BitsPerTraceCycle(b, m int) int { return core.BitsPerTraceCycle(b, m) }

// WriteLog serializes log entries in the compact wire format.
func WriteLog(w io.Writer, m, b int, entries []LogEntry) error {
	return core.WriteLog(w, m, b, entries)
}

// ReadLog deserializes a timeprint log.
func ReadLog(r io.Reader) (m, b int, entries []LogEntry, err error) {
	return core.ReadLog(r)
}

// NewReconstructor builds a signal-reconstruction instance for a log
// entry, optionally constrained by temporal properties.
func NewReconstructor(enc *Encoding, entry LogEntry, constraints []Constraint, opts Options) (*Reconstructor, error) {
	return reconstruct.New(enc, entry, constraints, opts)
}

// BruteForce solves reconstruction by F2 Gaussian elimination and
// coset enumeration — the validation baseline.
func BruteForce(enc *Encoding, entry LogEntry, limit int) ([]Signal, error) {
	return reconstruct.BruteForce(enc, entry, limit, 0)
}

// NewDispatcher builds a cost-model router over all reconstruction
// backends. Force (DispatchOptions.Force) pins a single backend;
// "auto" or empty enables feature-based routing.
func NewDispatcher(enc *Encoding, opts DispatchOptions) (*Dispatcher, error) {
	return reconstruct.NewDispatcher(enc, opts)
}

// ErrUnsupported reports that an oracle cannot soundly answer a
// request (e.g. algebraic decode beyond k=4); the dispatcher uses it
// to fall back to SAT.
var ErrUnsupported = reconstruct.ErrUnsupported

// NewStore creates an empty timeprint database for one traced signal.
func NewStore(name string, clockHz float64, m, b int) *Store {
	return trace.NewStore(name, clockHz, m, b)
}

// NewRecorder creates an empty reference-trace recorder.
func NewRecorder() *Recorder { return trace.NewRecorder() }

// Temporal properties (Section 5.1.3 and the didactic Section 3.3).
type (
	// P2 holds when two consecutive change cycles appear at least once.
	P2 = properties.P2
	// Dk holds when at least K changes occur before cycle D.
	Dk = properties.Dk
	// PairedChanges holds when every change belongs to an isolated
	// adjacent pair (one-cycle value writes).
	PairedChanges = properties.PairedChanges
	// Window restricts all changes to [Lo, Hi).
	Window = properties.Window
	// ChangeBefore holds when some change precedes cycle D.
	ChangeBefore = properties.ChangeBefore
	// QuietBefore holds when no change precedes cycle D.
	QuietBefore = properties.QuietBefore
	// MinGap keeps consecutive changes at least Gap cycles apart.
	MinGap = properties.MinGap
	// ExactChanges pins the complete change set.
	ExactChanges = properties.ExactChanges
	// OneOfSignals restricts the signal to an explicit candidate set.
	OneOfSignals = properties.OneOfSignals
	// All conjoins properties.
	All = properties.All

	// TCL-style timing constraints (Lisper–Nordlander, the paper's
	// reference [15]):

	// Response requires every change to be answered by another within
	// [L, U] cycles (windows truncated at the trace-cycle end).
	Response = properties.Response
	// Periodic restricts changes to within Jitter of the Period grid.
	Periodic = properties.Periodic
	// MaxGap bounds the distance between consecutive changes.
	MaxGap = properties.MaxGap
	// CountBetween bounds the change count in a window.
	CountBetween = properties.CountBetween
	// FirstChangeIn constrains where the first change may fall.
	FirstChangeIn = properties.FirstChangeIn
)

// DelayedVariants builds the Section 5.2.2 localization property: the
// reference trace with exactly one change delayed by delta cycles.
func DelayedVariants(ref Signal, delta int) OneOfSignals {
	return properties.DelayedVariants(ref, delta)
}

// Runtime-verification monitors (the paper's Figures 1–3 "RV" box):
// constant-state FSMs checking a property online, one verdict per
// trace-cycle. Satisfied verdicts may prune reconstruction via
// Monitor.Constraints.
type (
	// Monitor drives a property FSM over a change stream segmented
	// into trace-cycles.
	Monitor = monitor.Monitor
	// MonitorFSM is the constant-state online checker interface.
	MonitorFSM = monitor.FSM
	// MonitorVerdict is one trace-cycle outcome.
	MonitorVerdict = monitor.Verdict
)

// NewMonitor wraps an FSM for trace-cycles of length m.
func NewMonitor(fsm MonitorFSM, m int) *Monitor { return monitor.New(fsm, m) }

// Monitor FSM constructors.
func NewDkMonitor(d, k int) MonitorFSM       { return monitor.NewDk(d, k) }
func NewMinGapMonitor(gap int) MonitorFSM    { return monitor.NewMinGap(gap) }
func NewWindowMonitor(lo, hi int) MonitorFSM { return monitor.NewWindow(lo, hi) }
func NewPairedChangesMonitor() MonitorFSM    { return monitor.NewPairedChanges() }
func NewPeriodicMonitor(period, jitter int) MonitorFSM {
	return monitor.NewPeriodic(period, jitter)
}

// NewResponseMonitor monitors "every change answered within [1, U]".
func NewResponseMonitor(u int) (MonitorFSM, error) { return monitor.NewResponse(u) }

// ParseProperty reads a property from its textual form (see
// internal/properties.Parse for the grammar), e.g.
// "mingap(3); dk(32,3)".
func ParseProperty(s string) (Property, error) { return properties.Parse(s) }
