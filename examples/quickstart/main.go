// Command quickstart walks through the paper's Figure 4 didactic
// example with the exact timestamps printed there: a 16-cycle
// trace-cycle with 8-bit timestamps, a signal changing in cycles
// 4, 5, 10 and 11 (1-based), the resulting timeprint 00000001, and the
// staged reconstruction — 256 candidate signals from the timeprint
// alone, 8 once the change count k = 4 is imposed, and exactly 1 once
// the paired-changes property of Section 3.3 is added. It closes with
// the deadline check: every candidate changes before cycle 8, so the
// deadline verdict holds no matter which signal actually occurred.
package main

import (
	"fmt"
	"log"

	timeprints "repro"
)

func main() {
	// The 16 timestamps of Figure 4, TS(1)..TS(16), MSB-first.
	enc, err := timeprints.EncodingFromStrings([]string{
		"00010100", "00111010", "00001111", "01000100",
		"00000010", "10101110", "01100000", "11110101",
		"00010111", "11100111", "10100000", "10101000",
		"10011110", "10001111", "01110000", "01101100",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Encoding: m=%d clock-cycles per trace-cycle, b=%d-bit timestamps\n", enc.M(), enc.B())
	fmt.Printf("Constant log size: %d bits per trace-cycle\n\n", timeprints.BitsPerTraceCycle(enc.B(), enc.M()))

	// The actual signal: changes in clock-cycles 4, 5, 10, 11 of the
	// paper's 1-based numbering (0-based 3, 4, 9, 10).
	actual := timeprints.SignalFromChanges(16, 3, 4, 9, 10)
	entry := timeprints.Log(enc, actual)
	fmt.Printf("Traced signal (cycle 0 leftmost): %s\n", actual)
	fmt.Printf("Logged entry: TP=%s k=%d\n\n", entry.TP, entry.K)

	// Stage 1: how many signals aggregate to this timeprint at all?
	// (Any k — drop the cardinality information.) The paper: 256.
	anyK := 0
	for k := 0; k <= 16; k++ {
		rec, err := timeprints.NewReconstructor(enc, timeprints.LogEntry{TP: entry.TP, K: k}, nil, timeprints.Options{})
		if err != nil {
			log.Fatal(err)
		}
		sigs, _, err := rec.EnumerateStrict(0)
		if err != nil {
			log.Fatal(err)
		}
		anyK += len(sigs)
	}
	fmt.Printf("Signals whose timestamps sum to TP (any k): %d\n", anyK)

	// Stage 2: impose the logged k = 4. The paper: 8 candidates.
	rec, err := timeprints.NewReconstructor(enc, entry, nil, timeprints.Options{})
	if err != nil {
		log.Fatal(err)
	}
	withK, _, err := rec.EnumerateStrict(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Candidates with k = %d: %d\n", entry.K, len(withK))
	for _, s := range withK {
		fmt.Printf("  %s\n", s)
	}

	// Stage 3: the verified property "writes last one cycle", i.e.
	// changes always come as two consecutive ones. The paper: unique.
	rec2, err := timeprints.NewReconstructor(enc, entry,
		[]timeprints.Constraint{timeprints.PairedChanges{}}, timeprints.Options{})
	if err != nil {
		log.Fatal(err)
	}
	unique, _, err := rec2.EnumerateStrict(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nWith the paired-changes property: %d candidate(s)\n", len(unique))
	for _, s := range unique {
		fmt.Printf("  %s  (matches actual: %v)\n", s, s.Equal(actual))
	}

	// Deadline check (Section 3.3): did the signal fire before cycle 8?
	// All 8 candidates do, so the answer is certain without isolating
	// the actual signal. The UNSAT dual proves it.
	rec3, err := timeprints.NewReconstructor(enc, entry,
		[]timeprints.Constraint{timeprints.QuietBefore{D: 8}}, timeprints.Options{})
	if err != nil {
		log.Fatal(err)
	}
	verdict := rec3.Check()
	fmt.Printf("\nDeadline check: any candidate quiet before cycle 8? %v\n", verdict)
	fmt.Println("=> every signal consistent with the log changed before the deadline")
}
