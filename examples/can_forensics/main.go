// Command can_forensics runs the paper's Section 5.2.1 experiment: a
// CAN bus carries periodic automotive traffic (EngineData, ABSdata,
// GearBoxInfo, Ignition_Info) at 5 Mbps while timeprints of the bus
// line are logged with m = 1000 and b = 24 — 34 bits per trace-cycle.
// One EngineData transmission is manually delayed past its deadline.
// From the logged timeprint of the affected trace-cycle alone, the
// tool reconstructs when the frame actually appeared on the wire
// (clock-cycle 823), shows that restricting the search to the known
// failure window is much faster, and proves by an UNSAT verdict that
// the transmission could not have completed before the deadline —
// settling which supplier is responsible for the late response.
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
)

func main() {
	cfg := experiments.DefaultCANConfig()
	fmt.Printf("CAN bus at %.0f Mbps, trace-cycles of %d bits, %d-bit timestamps\n",
		cfg.BitRate/1e6, cfg.M, cfg.B)

	res, err := experiments.RunCAN(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nTransmitter-side software log (as reported by the application):")
	for i, r := range res.SoftwareLog {
		if i >= 8 {
			fmt.Printf("  ... (%d more)\n", len(res.SoftwareLog)-i)
			break
		}
		fmt.Printf("  %s\n", r)
	}

	fmt.Printf("\nTimeprint logging rate: %.0f bit/s (%d bits per %d-bit trace-cycle)\n",
		res.LogRateBps, 34, cfg.M)
	fmt.Printf("Analysed trace-cycle %d: TP=%s k=%d\n", res.TraceCycle, res.Entry.TP, res.Entry.K)
	fmt.Printf("Delayed frame: %d bits on the wire, true start at clock-cycle %d (deadline %d)\n",
		res.FrameBits, res.TrueStart, cfg.DeadlineCycle)

	fmt.Printf("\n(a) Whole trace-cycle reconstruction: offsets %v in %v\n",
		res.WholeOffsets, res.WholeDuration)
	fmt.Printf("(b) Failure-window [%d,%d) reconstruction: offsets %v in %v\n",
		cfg.WindowLo, cfg.M, res.WindowOffsets, res.WindowDuration)
	fmt.Printf("(c) \"Completed before deadline\" proof: %v in %v\n",
		res.DeadlineStatus, res.DeadlineDuration)

	if res.DecodedID != 0 {
		fmt.Printf("\nFrame recovered from the reconstruction: ID=%d data=% x\n",
			res.DecodedID, res.DecodedData)
	}
	end := res.TrueStart + res.FrameBits
	fmt.Printf("\nVerdict: the frame occupied cycles %d..%d; the deadline was cycle %d.\n",
		res.TrueStart, end, cfg.DeadlineCycle)
	fmt.Println("The transmitter (chip C1) put the message on the wire after the deadline.")
}
