// Command refresh_detect runs the paper's Section 5.2.2 experiment: a
// LEON3-style core executes a sensor-loop image against an SRAM on an
// AHB bus, with the timeprints agg-log hardware attached to the bus's
// address signals (m = 1024). The same image runs three times:
//
//  1. "hardware"  — true wait states, temperature-compensated refresh,
//     activity-driven self-heating;
//  2. "buggy sim" — the RTL-simulation twin with the Gaisler library's
//     wrong wait-state configuration: caught by k mismatches;
//  3. "fixed sim" — wait states corrected: k now matches everywhere,
//     but timeprints start to differ at the first refresh collision.
//
// Each mismatching trace-cycle is then diagnosed by reconstructing the
// hardware's signal under the property "the simulation trace with one
// change instance delayed by one clock-cycle", which pinpoints the
// exact delayed access. A final ambient-temperature sweep shows the
// mismatch onset moving earlier as the die gets hotter — the
// temperature-compensated refresh behaviour the data-sheet leaves
// unspecified.
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
)

func main() {
	cfg := experiments.DefaultRefreshConfig(45)
	fmt.Printf("SoC run: m=%d, b=%d, %d trace-cycles, ambient %.0f C\n",
		cfg.M, cfg.B, cfg.TraceCycles, cfg.AmbientC)

	res, err := experiments.RunRefresh(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nStep 1 — wait-state configuration bug:\n")
	fmt.Printf("  hardware vs misconfigured simulation: %d trace-cycles with differing k\n",
		res.KMismatchesBuggy)
	fmt.Printf("  hardware vs fixed simulation:         %d trace-cycles with differing k\n",
		res.KMismatchesFixed)

	fmt.Printf("\nStep 2 — refresh effects (equal k, different timeprints):\n")
	fmt.Printf("  ground truth: %d refresh collisions, final die temperature %.1f C\n",
		res.Collisions, res.FinalTempC)
	fmt.Printf("  timeprint mismatches in trace-cycles %v (first: %d)\n",
		res.TPMismatches, res.FirstMismatch)

	fmt.Printf("\nStep 3 — localization via the one-cycle-delay property:\n")
	for _, l := range res.Localizations {
		switch {
		case l.Candidates == 1 && len(l.DelayedChangeCycles) == 1:
			fmt.Printf("  trace-cycle %3d: change at clock-cycle %4d was delayed by 1 cycle (verified: %v)\n",
				l.TraceCycle, l.DelayedChangeCycles[0], l.Verified)
		case l.Candidates == 1:
			fmt.Printf("  trace-cycle %3d: changes at clock-cycles %v were each delayed by 1 cycle (verified: %v)\n",
				l.TraceCycle, l.DelayedChangeCycles, l.Verified)
		case l.Candidates == 0:
			fmt.Printf("  trace-cycle %3d: no one- or two-delay explanation (heavier collision pattern)\n", l.TraceCycle)
		default:
			fmt.Printf("  trace-cycle %3d: %d delay candidates\n", l.TraceCycle, l.Candidates)
		}
	}

	fmt.Printf("\nStep 4 — temperature sweep (mismatch onset per ambient):\n")
	sweep, err := experiments.RefreshSweep(cfg, []float64{25, 45, 65, 85})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range sweep {
		fmt.Printf("  ambient %2.0f C: first steady-state mismatch at trace-cycle %2d  (collisions %2d, final temp %.1f C)\n",
			r.Config.AmbientC, r.FirstSteadyMismatch, r.Collisions, r.FinalTempC)
	}
	fmt.Println("\nThe one-cycle delay happens earlier when the die is hotter — the")
	fmt.Println("temperature-compensated refresh, undefined at design time, made visible.")
}
