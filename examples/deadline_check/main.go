// Command deadline_check demonstrates property-based verdicts over
// timeprint logs (Sections 3.3 and 5.1.3) on a synthetic watchdog
// scenario: a component must kick a watchdog signal at least 3 times
// before its deadline in every trace-cycle. Instead of reconstructing
// exact signals, the tool asks for each logged trace-cycle:
//
//   - does EVERY signal consistent with the log satisfy Dk?  (the
//     verdict is certain — safe)
//   - does NO signal consistent with the log satisfy Dk?     (certain
//     violation)
//   - otherwise the log alone is inconclusive and reconstruction
//     candidates are listed.
//
// This is the "we only want to know whether there is a trace that
// satisfies or breaks a certain temporal property" usage of the paper.
package main

import (
	"fmt"
	"log"
	"math/rand"

	timeprints "repro"
)

const (
	m        = 64
	b        = 13
	deadline = 32
	minKicks = 3
)

func main() {
	enc, err := timeprints.NewEncoding(m, b)
	if err != nil {
		log.Fatal(err)
	}
	prop := timeprints.Dk{D: deadline, K: minKicks}
	fmt.Printf("Watchdog property: at least %d changes before cycle %d (m=%d, b=%d)\n\n",
		minKicks, deadline, m, b)

	// Generate trace-cycles: healthy ones kick early; one degrades.
	rng := rand.New(rand.NewSource(7))
	var signals []timeprints.Signal
	for tc := 0; tc < 6; tc++ {
		var changes []int
		kicks := minKicks + rng.Intn(2)
		if tc == 4 {
			kicks = 1 // the degraded trace-cycle
		}
		for i := 0; i < kicks; i++ {
			changes = append(changes, rng.Intn(deadline-2)+1)
		}
		// Some activity after the deadline too.
		for i := 0; i < 2; i++ {
			changes = append(changes, deadline+rng.Intn(m-deadline))
		}
		signals = append(signals, timeprints.SignalFromChanges(m, dedupe(changes)...))
	}

	for tc, s := range signals {
		entry := timeprints.Log(enc, s)

		// Certain violation: no consistent signal satisfies Dk.
		satisfies, err := timeprints.NewReconstructor(enc, entry,
			[]timeprints.Constraint{prop}, timeprints.Options{})
		if err != nil {
			log.Fatal(err)
		}
		someSatisfy := satisfies.Check() == timeprints.Sat

		// Certain satisfaction: no consistent signal has fewer than
		// minKicks changes before the deadline. Encode the negation:
		// at most minKicks-1 changes in the window. Since Dk is an
		// at-least constraint, its complement is expressible by
		// windowed cardinality via reconstruction candidates; here we
		// enumerate and evaluate, which doubles as a demonstration of
		// candidate listing.
		recAll, err := timeprints.NewReconstructor(enc, entry, nil, timeprints.Options{})
		if err != nil {
			log.Fatal(err)
		}
		cands, complete, err := recAll.EnumerateStrict(0)
		if err != nil {
			log.Fatal(err)
		}
		if !complete {
			log.Fatal("enumeration incomplete")
		}
		allSatisfy := true
		for _, c := range cands {
			if !prop.Holds(c) {
				allSatisfy = false
				break
			}
		}

		verdict := "INCONCLUSIVE"
		switch {
		case allSatisfy:
			verdict = "SAFE (every consistent signal kicked in time)"
		case !someSatisfy:
			verdict = "VIOLATION (no consistent signal kicked in time)"
		}
		fmt.Printf("trace-cycle %d: k=%d, %3d candidate signals -> %s\n",
			tc, entry.K, len(cands), verdict)
		if !allSatisfy && someSatisfy {
			fmt.Printf("  log is ambiguous; ground truth satisfies property: %v\n", prop.Holds(s))
		}
	}
}

func dedupe(xs []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}
