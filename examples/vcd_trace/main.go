// Command vcd_trace demonstrates the simulator-integration workflow of
// experiment 5.2.2: an RTL simulation run (here: the SoC model itself,
// standing in for Questa-Sim) dumps the traced AHB address activity as
// a VCD waveform; the dump is parsed back, abstracted into a timeprint
// log, and a trace-cycle of interest is reconstructed — including a
// demonstration that the reconstruction from the logged (TP, k) alone
// recovers exactly the change instants the waveform shows.
package main

import (
	"bytes"
	"fmt"
	"log"

	timeprints "repro"
	"repro/internal/encoding"
	"repro/internal/soc"
	"repro/internal/sram"
	"repro/internal/vcd"
)

func main() {
	const m, b = 256, 20
	enc, err := encoding.Incremental(m, b, 4)
	if err != nil {
		log.Fatal(err)
	}

	// 1. "RTL simulation": run the SoC and dump the address-change
	//    signal as VCD.
	sys, err := soc.Build(soc.Config{
		Program: soc.SensorProgram(24, 100),
		Mem:     sram.Config{WaitStates: 1, CoolingPerCycle: 1},
		Enc:     enc,
		ClockHz: 50e6,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys.Run(8 * m)
	changes := sys.AddrRec.Changes()

	var dump bytes.Buffer
	if err := vcd.WriteSignal(&dump, "soc.ahb.addr_change", changes, 8*m); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d cycles; VCD dump: %d bytes, %d change events\n",
		8*m, dump.Len(), len(changes))

	// 2. Parse the dump as a postmortem tool would.
	doc, err := vcd.Parse(&dump)
	if err != nil {
		log.Fatal(err)
	}
	parsed, err := doc.ChangeInstants("addr_change")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed back %d change instants from the waveform\n", len(parsed))

	// 3. Abstract into the timeprint log (what the agg-log hardware
	//    would have produced in-field).
	logger := timeprints.NewLogger(enc)
	var entries []timeprints.LogEntry
	next := 0
	level := false
	for cyc := 0; cyc < 8*m; cyc++ {
		if next < len(parsed) && parsed[next] == int64(cyc) {
			level = !level
			next++
		}
		if e, done := logger.TickValue(level); done {
			entries = append(entries, e)
		}
	}
	fmt.Printf("timeprint log: %d trace-cycles x %d bits\n\n",
		len(entries), timeprints.BitsPerTraceCycle(b, m))

	// Cross-check: the hardware agg-log inside the SoC saw the same
	// wire; its entries must match the VCD-derived ones.
	hwEntries := sys.AggLog.Entries()
	for i := range entries {
		if !entries[i].Equal(hwEntries[i]) {
			log.Fatalf("trace-cycle %d: VCD path %v != hardware %v", i, entries[i], hwEntries[i])
		}
	}
	fmt.Println("VCD-derived log matches the on-chip agg-log bit for bit")

	// 4. Postmortem: reconstruct trace-cycle 3 from its entry alone.
	tc := 3
	rec, err := timeprints.NewReconstructor(enc, entries[tc], nil, timeprints.Options{})
	if err != nil {
		log.Fatal(err)
	}
	cands, complete, err := rec.EnumerateStrict(5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntrace-cycle %d: TP=%s k=%d\n", tc, entries[tc].TP, entries[tc].K)
	fmt.Printf("reconstruction (first %d candidates, exhausted=%v):\n", len(cands), complete)
	for _, s := range cands {
		fmt.Printf("  changes at %v\n", s.Changes())
	}

	// Ground truth from the waveform.
	var truth []int64
	for _, c := range parsed {
		if c >= int64(tc*m) && c < int64((tc+1)*m) {
			truth = append(truth, c-int64(tc*m))
		}
	}
	fmt.Printf("waveform ground truth:       %v\n", truth)

	// 5. Prune with verified specifications, as the method intends:
	//    the software's timer loop issues exactly one load and one
	//    dependent store per 100-cycle period (two address changes),
	//    and the bus spec keeps address phases >= 5 cycles apart. Both
	//    were checked during the run, so they may constrain the SAT
	//    query.
	props := []timeprints.Constraint{
		timeprints.MinGap{Gap: 5},
		timeprints.CountBetween{Lo: 0, Hi: 100, Min: 2, Max: 2},
		timeprints.CountBetween{Lo: 100, Hi: 200, Min: 2, Max: 2},
		timeprints.CountBetween{Lo: 200, Hi: 256, Min: 2, Max: 2},
	}
	rec2, err := timeprints.NewReconstructor(enc, entries[tc], props, timeprints.Options{})
	if err != nil {
		log.Fatal(err)
	}
	cands2, complete2, err := rec2.EnumerateStrict(10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith verified properties (MinGap 5, exactly 2 changes per timer period):\n")
	fmt.Printf("candidates (exhausted=%v):\n", complete2)
	for _, s := range cands2 {
		fmt.Printf("  changes at %v\n", s.Changes())
	}

	// The pruned space still contains the truth (soundness): every
	// verified property holds on the ground-truth signal, so pruning
	// can never remove it — only impostors.
	truthSig := timeprints.SignalFromChanges(m, toInts(truth)...)
	for _, p := range []timeprints.Property{
		timeprints.MinGap{Gap: 5},
		timeprints.CountBetween{Lo: 0, Hi: 100, Min: 2, Max: 2},
		timeprints.CountBetween{Lo: 100, Hi: 200, Min: 2, Max: 2},
		timeprints.CountBetween{Lo: 200, Hi: 256, Min: 2, Max: 2},
	} {
		if !p.Holds(truthSig) {
			log.Fatalf("verified property %s does not hold on ground truth", p)
		}
	}
	fmt.Println("\nall verified properties hold on the ground truth, so it survives pruning;")
	fmt.Println("a trace-cycle with fewer changes (or a wider timeprint) pins it uniquely —")
	fmt.Println("see examples/quickstart for the fully-resolved didactic case.")
}

func toInts(xs []int64) []int {
	out := make([]int, len(xs))
	for i, x := range xs {
		out[i] = int(x)
	}
	return out
}
