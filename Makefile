GO ?= go

.PHONY: check fmt vet build test race bench-smoke diffcheck

# check is the canonical verification gate: formatting, vet, build,
# the full test suite under the race detector, and a single-pass run
# of the Figure 4 benchmark as an end-to-end smoke test.
check: fmt vet build race bench-smoke

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench-smoke:
	$(GO) test -run=NONE -bench=BenchmarkFigure4 -benchtime=1x .

# diffcheck runs the differential-oracle and fault-injection trust
# harness: a seeded 200-case corpus through every reconstruction
# oracle pair plus fault injection, under the race detector.
diffcheck:
	$(GO) run -race ./cmd/timeprint selfcheck -cases 200 -seed 1 -workers 2,4
