GO ?= go

# The guarded benchmarks and their recorded baseline (see
# internal/benchdiff). -benchtime=1x -count=5 keeps the solver
# workloads bounded while still giving the guard a median.
BENCH_GUARD    ?= BenchmarkPresolveOnOff|BenchmarkParallelWorkers
BENCH_BASELINE ?= BENCH_PR3.json
BENCH_FLAGS     = -run='^$$' -bench='$(BENCH_GUARD)' -count=5 -benchtime=1x .

# The incremental-session benchmark and its own baseline (PR6): the
# 16-query m=512/k=8 session, incremental vs fresh-solver.
SESSION_GUARD    = BenchmarkSessionQueries
SESSION_BASELINE = BENCH_PR6.json
SESSION_FLAGS    = -run='^$$' -bench='$(SESSION_GUARD)' -count=5 -benchtime=1x .

# The cost-model dispatcher benchmark and its baseline (PR7): a
# rank-pinned/small-k request mix, auto-routing vs always-SAT.
DISPATCH_GUARD    = BenchmarkDispatch
DISPATCH_BASELINE = BENCH_PR7.json
DISPATCH_FLAGS    = -run='^$$' -bench='$(DISPATCH_GUARD)' -count=5 -benchtime=1x .

# The in-search Gauss benchmark and its baseline (PR9): the planted
# unconstrained m=512 witness cells (k = 3, 4, 8), in-search Gaussian
# elimination vs level-0-only reduction. The guarded column is the
# summed CONFLICT count, not ns/op: the planted entries make it a
# deterministic solver-effort metric, so the guard pins the propagation
# win itself and survives noisy CI wall clocks.
GAUSS_GUARD    = BenchmarkSessionQueriesGauss
GAUSS_BASELINE = BENCH_PR9.json
GAUSS_FLAGS    = -run='^$$' -bench='$(GAUSS_GUARD)' -count=5 -benchtime=1x .

# The tprload latency baseline (PR8): client-side mean latency per
# request class (hot/cold/batch/stream) from the load harness. The
# guard threshold is loose (75%) because these are wall-clock HTTP
# latencies on a shared CI box, not isolated CPU benchmarks.
LOAD_BASELINE = BENCH_PR8.json

.PHONY: check fmt vet build test race bench-smoke diffcheck benchdiff benchrecord session-bench session-bench-record dispatch-bench dispatch-bench-record dispatch-check gauss-bench gauss-bench-record gauss-check metrics-smoke timeprintd service-smoke store-smoke load-smoke load-bench load-bench-record fuzz-smoke

# check is the canonical verification gate: formatting, vet, build,
# the full test suite under the race detector, and a single-pass run
# of the Figure 4 benchmark as an end-to-end smoke test.
check: fmt vet build race bench-smoke

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench-smoke:
	$(GO) test -run=NONE -bench=BenchmarkFigure4 -benchtime=1x .

# diffcheck runs the differential-oracle and fault-injection trust
# harness: a seeded 200-case corpus through every reconstruction
# oracle pair plus fault injection, under the race detector.
diffcheck:
	$(GO) run -race ./cmd/timeprint selfcheck -cases 200 -seed 1 -workers 2,4

# benchdiff is the benchmark-regression guard: rerun the guarded
# benchmarks and fail if any median slowed >30% against the recorded
# baseline. benchrecord refreshes the baseline (do this deliberately,
# on the same class of machine the guard will run on).
benchdiff:
	$(GO) test $(BENCH_FLAGS) | $(GO) run ./cmd/benchdiff -baseline $(BENCH_BASELINE) -threshold 0.30

benchrecord:
	$(GO) test $(BENCH_FLAGS) | $(GO) run ./cmd/benchdiff -record -out $(BENCH_BASELINE) -note "count=5 benchtime=1x $(BENCH_GUARD)"

# session-bench guards the incremental-session speedup (PR6): rerun
# BenchmarkSessionQueries and fail if either side's median slowed >30%
# against BENCH_PR6.json. session-bench-record refreshes that baseline.
session-bench:
	$(GO) test $(SESSION_FLAGS) | $(GO) run ./cmd/benchdiff -baseline $(SESSION_BASELINE) -threshold 0.30

session-bench-record:
	$(GO) test $(SESSION_FLAGS) | $(GO) run ./cmd/benchdiff -record -out $(SESSION_BASELINE) -note "count=5 benchtime=1x $(SESSION_GUARD)"

# dispatch-bench guards the cost-model routing win (PR7): rerun
# BenchmarkDispatch and fail if either side's median slowed >30%
# against BENCH_PR7.json. dispatch-bench-record refreshes that
# baseline. dispatch-check is the CI job: vet, the dispatcher/oracle
# test surface under the race detector, then the benchmark guard.
dispatch-bench:
	$(GO) test $(DISPATCH_FLAGS) | $(GO) run ./cmd/benchdiff -baseline $(DISPATCH_BASELINE) -threshold 0.30

dispatch-bench-record:
	$(GO) test $(DISPATCH_FLAGS) | $(GO) run ./cmd/benchdiff -record -out $(DISPATCH_BASELINE) -note "count=5 benchtime=1x $(DISPATCH_GUARD)"

dispatch-check:
	$(GO) vet ./...
	$(GO) test -race -count=1 -run 'Dispatch|Route|Oracle|Classify|Strict|Session|Incremental' ./internal/reconstruct/ ./internal/service/
	$(MAKE) dispatch-bench

# gauss-bench guards the in-search Gauss propagation win (PR9): rerun
# BenchmarkSessionQueriesGauss and fail if either side's median summed
# conflict count rose >30% against BENCH_PR9.json — a rise on the
# insearch side means the matrix propagator lost its advantage.
# gauss-bench-record refreshes the baseline (conflicts are
# deterministic for a fixed solver, so any material diff is a real
# behavior change, not machine noise). gauss-check is the CI job: vet,
# the XOR/Gauss test surface under the race detector (including the
# 4-way differential parity hammer), then the benchmark guard.
gauss-bench:
	$(GO) test $(GAUSS_FLAGS) | $(GO) run ./cmd/benchdiff -metric conflicts -baseline $(GAUSS_BASELINE) -threshold 0.30

gauss-bench-record:
	$(GO) test $(GAUSS_FLAGS) | $(GO) run ./cmd/benchdiff -metric conflicts -record -out $(GAUSS_BASELINE) -note "count=5 benchtime=1x $(GAUSS_GUARD), median summed conflicts (planted m=512 k=3,4,8)"

gauss-check:
	$(GO) vet ./...
	$(GO) test -race -count=1 -run 'Gauss|Xor|Parity' ./internal/sat/ ./internal/reconstruct/
	$(MAKE) gauss-bench

# metrics-smoke exercises the observability contract end to end: a
# selfcheck run dumps a -metrics snapshot, metricscheck validates the
# JSON schema and the key instrument names, and `timeprint stats`
# renders it. CI runs this as its own job.
# timeprintd builds the streaming reconstruction daemon; service-smoke
# runs its self-contained end-to-end smoke test (wire ingest, solve,
# cache hit, count, compare, /metrics counter contract) plus the
# service package's integration tests under the race detector. CI runs
# service-smoke as its own job.
timeprintd:
	$(GO) build -o timeprintd ./cmd/timeprintd

service-smoke:
	$(GO) run ./cmd/timeprintd -smoke
	$(GO) test -race -count=1 ./internal/service/

# store-smoke proves the durable log store end to end: the logstore
# invariant battery (crash-recovery matrix, compaction property test,
# concurrency hammer) under the race detector, the store/query/mine
# surfaces of the service and experiments packages, the timeprintd
# smoke (whose store leg ingests, queries, restarts the daemon on the
# same directory and re-queries identically), and the load harness
# with the store tee contract asserted. CI runs this as its own job.
store-smoke:
	$(GO) test -race -count=1 ./internal/logstore/
	$(GO) test -race -count=1 -run 'Store|Query|Mine' ./internal/service/ ./internal/experiments/
	$(GO) run ./cmd/timeprintd -smoke
	$(GO) run ./cmd/tprload -self -store

# load-smoke drives a self-contained timeprintd through the tprload
# request mixes (cache-hot, cold sessions, batch, stream, malformed,
# overload) and asserts the operational contract: latency SLOs, the
# shed budget, batch/stream encoding amortization and atomic batch
# admission. load-bench guards the per-class mean latencies against
# BENCH_PR8.json; load-bench-record refreshes that baseline.
load-smoke:
	$(GO) run ./cmd/tprload -self

load-bench:
	$(GO) run ./cmd/tprload -self -bench -count 5 | $(GO) run ./cmd/benchdiff -baseline $(LOAD_BASELINE) -threshold 0.75

load-bench-record:
	$(GO) run ./cmd/tprload -self -bench -count 5 | $(GO) run ./cmd/benchdiff -record -out $(LOAD_BASELINE) -note "tprload -self -bench -count 5, per-class mean latency"

# fuzz-smoke gives each fuzz target a short randomized burst on top of
# its seeded corpus — cheap enough for CI, still long enough to shake
# out parser regressions. One invocation per target: go test allows a
# single -fuzz pattern per package run.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzReadLog -fuzztime=10s ./internal/core/
	$(GO) test -run='^$$' -fuzz=FuzzBatchRequest -fuzztime=10s ./internal/service/
	$(GO) test -run='^$$' -fuzz=FuzzXorSystem -fuzztime=10s ./internal/sat/
	$(GO) test -run='^$$' -fuzz=FuzzSegment -fuzztime=10s ./internal/logstore/

metrics-smoke:
	$(GO) run ./cmd/timeprint selfcheck -cases 40 -metrics /tmp/timeprint-metrics.json
	$(GO) run ./cmd/metricscheck -in /tmp/timeprint-metrics.json \
		-counter sat.solve.calls -counter sat.decisions -counter sat.conflicts \
		-counter sat.enumerate.models -counter sat.parallel.cubes \
		-counter reconstruct.instances -counter reconstruct.candidates \
		-counter core.wire.bytes_out \
		-hist sat.solve.ns -hist reconstruct.enumerate.ns -hist reconstruct.build.ns
	$(GO) run ./cmd/timeprint stats -in /tmp/timeprint-metrics.json
