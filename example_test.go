package timeprints_test

import (
	"fmt"

	timeprints "repro"
)

// ExampleLog shows the logging procedure on the paper's Figure 4
// example: four changes in a 16-cycle trace-cycle collapse to an 8-bit
// timeprint plus a 5-bit counter.
func ExampleLog() {
	enc, _ := timeprints.EncodingFromStrings([]string{
		"00010100", "00111010", "00001111", "01000100",
		"00000010", "10101110", "01100000", "11110101",
		"00010111", "11100111", "10100000", "10101000",
		"10011110", "10001111", "01110000", "01101100",
	})
	signal := timeprints.SignalFromChanges(16, 3, 4, 9, 10)
	entry := timeprints.Log(enc, signal)
	fmt.Printf("TP=%s k=%d (%d bits logged)\n",
		entry.TP, entry.K, timeprints.BitsPerTraceCycle(enc.B(), enc.M()))
	// Output: TP=00000001 k=4 (13 bits logged)
}

// ExampleNewReconstructor reconstructs the Figure 4 trace-cycle: the
// timeprint and counter alone leave 8 candidates; the verified
// paired-changes property isolates the actual signal.
func ExampleNewReconstructor() {
	enc, _ := timeprints.EncodingFromStrings([]string{
		"00010100", "00111010", "00001111", "01000100",
		"00000010", "10101110", "01100000", "11110101",
		"00010111", "11100111", "10100000", "10101000",
		"10011110", "10001111", "01110000", "01101100",
	})
	entry := timeprints.Log(enc, timeprints.SignalFromChanges(16, 3, 4, 9, 10))

	unconstrained, _ := timeprints.NewReconstructor(enc, entry, nil, timeprints.Options{})
	all, _ := unconstrained.Enumerate(0)

	constrained, _ := timeprints.NewReconstructor(enc, entry,
		[]timeprints.Constraint{timeprints.PairedChanges{}}, timeprints.Options{})
	unique, _ := constrained.Enumerate(0)

	fmt.Printf("%d candidates, %d with the property: changes at %v\n",
		len(all), len(unique), unique[0].Changes())
	// Output: 8 candidates, 1 with the property: changes at [3 4 9 10]
}

// ExampleLogRate computes the constant logging rate of the paper's CAN
// experiment: 34 bits per 1000-bit trace-cycle on a 5 Mbps bus.
func ExampleLogRate() {
	fmt.Printf("%.0f bit/s\n", timeprints.LogRate(24, 1000, 5e6))
	// Output: 170000 bit/s
}

// ExampleParseProperty parses a textual property expression into a
// reconstruction constraint.
func ExampleParseProperty() {
	p, err := timeprints.ParseProperty("mingap(3); dk(32,3)")
	if err != nil {
		panic(err)
	}
	sig := timeprints.SignalFromChanges(64, 5, 10, 20)
	fmt.Println(p, "holds:", p.Holds(sig))
	// Output: All(MinGap(3), Dk(>=3 before 32)) holds: true
}
