package timeprints_test

import (
	"bytes"
	"testing"

	timeprints "repro"
)

// TestFacadeEndToEnd walks the full public API: encode, log, serialize,
// reconstruct, check a property.
func TestFacadeEndToEnd(t *testing.T) {
	enc, err := timeprints.NewEncoding(64, 13)
	if err != nil {
		t.Fatal(err)
	}
	if enc.M() != 64 || enc.B() != 13 {
		t.Fatal("encoding dims")
	}

	// Stream a wire through the logger: changes at cycles 10, 11, 40.
	logger := timeprints.NewLogger(enc)
	level := false
	var entry timeprints.LogEntry
	for i := 0; i < 64; i++ {
		if i == 10 || i == 11 || i == 40 {
			level = !level
		}
		if e, done := logger.TickValue(level); done {
			entry = e
		}
	}
	if entry.K != 3 {
		t.Fatalf("k = %d", entry.K)
	}

	// Wire round trip.
	var buf bytes.Buffer
	if err := timeprints.WriteLog(&buf, 64, 13, []timeprints.LogEntry{entry}); err != nil {
		t.Fatal(err)
	}
	m, b, entries, err := timeprints.ReadLog(&buf)
	if err != nil || m != 64 || b != 13 || len(entries) != 1 || !entries[0].Equal(entry) {
		t.Fatalf("wire round trip: m=%d b=%d err=%v", m, b, err)
	}

	// Reconstruct; the true signal must be among the candidates.
	rec, err := timeprints.NewReconstructor(enc, entry, nil, timeprints.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sigs, complete := rec.Enumerate(0)
	if !complete || len(sigs) == 0 {
		t.Fatal("reconstruction failed")
	}
	truth := timeprints.SignalFromChanges(64, 10, 11, 40)
	found := false
	for _, s := range sigs {
		if s.Equal(truth) {
			found = true
		}
	}
	if !found {
		t.Fatal("true signal not reconstructed")
	}

	// Cross-check against the brute-force baseline on a small
	// instance (its coset enumeration is 2^(m-b)).
	smallEnc, err := timeprints.NewEncoding(16, 9)
	if err != nil {
		t.Fatal(err)
	}
	smallEntry := timeprints.Log(smallEnc, timeprints.SignalFromChanges(16, 3, 4, 9))
	bf, err := timeprints.BruteForce(smallEnc, smallEntry, 0)
	if err != nil {
		t.Fatal(err)
	}
	smallRec, err := timeprints.NewReconstructor(smallEnc, smallEntry, nil, timeprints.Options{})
	if err != nil {
		t.Fatal(err)
	}
	smallSigs, _ := smallRec.Enumerate(0)
	if len(bf) != len(smallSigs) {
		t.Fatalf("SAT %d vs brute force %d", len(smallSigs), len(bf))
	}

	// Property query: some change before cycle 12 — must hold for the
	// truth; the UNSAT dual proves nothing quiet-before-12 matches iff
	// all candidates change early.
	if !(timeprints.ChangeBefore{D: 12}).Holds(truth) {
		t.Fatal("property semantics")
	}
}

func TestFacadeLogRate(t *testing.T) {
	// Table 1's R column geometry: m=1024, b=24 at 100 MHz.
	r := timeprints.LogRate(24, 1024, 100e6)
	want := float64(24+11) / 1024 * 100e6
	if r != want {
		t.Fatalf("rate %f want %f", r, want)
	}
	if timeprints.BitsPerTraceCycle(24, 1000) != 34 {
		t.Fatal("CAN geometry")
	}
}

func TestFacadeEncodings(t *testing.T) {
	if _, err := timeprints.NewRandomEncoding(32, 16, 1); err != nil {
		t.Error(err)
	}
	e, err := timeprints.MinimalEncoding(16)
	if err != nil {
		t.Error(err)
	}
	if e.B() > 10 {
		t.Errorf("minimal b=%d suspiciously large for m=16", e.B())
	}
	oh := timeprints.OneHotEncoding(8)
	if oh.B() != 8 {
		t.Error("one-hot width")
	}
	if _, err := timeprints.NewEncodingDepth(16, 8, 2); err != nil {
		t.Error(err)
	}
}

func TestFacadeConstrainedReconstruction(t *testing.T) {
	enc, err := timeprints.NewEncoding(32, 11)
	if err != nil {
		t.Fatal(err)
	}
	truth := timeprints.SignalFromChanges(32, 4, 5, 20, 21)
	entry := timeprints.Log(enc, truth)
	rec, err := timeprints.NewReconstructor(enc, entry,
		[]timeprints.Constraint{timeprints.PairedChanges{}}, timeprints.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sigs, complete := rec.Enumerate(0)
	if !complete {
		t.Fatal("not exhausted")
	}
	for _, s := range sigs {
		if !(timeprints.PairedChanges{}).Holds(s) {
			t.Fatal("constraint violated")
		}
	}
	// DelayedVariants is exported and usable.
	dv := timeprints.DelayedVariants(truth, 1)
	if len(dv.Candidates) == 0 {
		t.Fatal("no delayed variants")
	}
}

func TestFacadeStatusConstants(t *testing.T) {
	if timeprints.Sat.String() != "SAT" || timeprints.Unsat.String() != "UNSAT" || timeprints.Unknown.String() != "UNKNOWN" {
		t.Fatal("status constants")
	}
}

func TestFacadeMonitors(t *testing.T) {
	mon := timeprints.NewMonitor(timeprints.NewDkMonitor(4, 1), 8)
	for i := 0; i < 8; i++ {
		mon.Tick(i == 2)
	}
	vs := mon.Verdicts()
	if len(vs) != 1 || !vs[0].Satisfied {
		t.Fatalf("verdicts %+v", vs)
	}
	if cs := mon.Constraints(0); len(cs) != 1 {
		t.Fatal("verdict did not yield a constraint")
	}
	if _, err := timeprints.NewResponseMonitor(0); err == nil {
		t.Fatal("bad response bound accepted")
	}
	for _, f := range []timeprints.MonitorFSM{
		timeprints.NewMinGapMonitor(2),
		timeprints.NewWindowMonitor(0, 4),
		timeprints.NewPairedChangesMonitor(),
		timeprints.NewPeriodicMonitor(4, 1),
	} {
		if f.String() == "" {
			t.Fatal("unnamed monitor")
		}
	}
}
