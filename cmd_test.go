package timeprints_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCmd compiles one of the repository's commands into a temp dir
// and returns the binary path.
func buildCmd(t *testing.T, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestTimeprintCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles binaries")
	}
	bin := buildCmd(t, "timeprint")

	out := run(t, bin, "minb", "-m", "64")
	if !strings.Contains(out, "minimal b=13") {
		t.Errorf("minb output: %s", out)
	}

	out = run(t, bin, "rate", "-m", "1000", "-b", "24", "-clock", "5e6")
	if !strings.Contains(out, "34") || !strings.Contains(out, "170000") {
		t.Errorf("rate output: %s", out)
	}

	logFile := filepath.Join(t.TempDir(), "x.tpr")
	out = run(t, bin, "log", "-m", "16", "-b", "8", "-changes", "3,4,9,10", "-out", logFile)
	if !strings.Contains(out, "k=4") {
		t.Errorf("log output: %s", out)
	}
	// Extract the printed TP and reconstruct from it.
	var tp string
	for _, f := range strings.Fields(out) {
		if strings.HasPrefix(f, "TP=") {
			tp = strings.TrimPrefix(f, "TP=")
		}
	}
	if len(tp) != 8 {
		t.Fatalf("no TP in output: %s", out)
	}
	out = run(t, bin, "reconstruct", "-m", "16", "-b", "8", "-tp", tp, "-k", "4", "-prop", "paired", "-limit", "0")
	if !strings.Contains(out, "changes=[3 4 9 10]") {
		t.Errorf("reconstruct output: %s", out)
	}

	out = run(t, bin, "decode", "-in", logFile)
	if !strings.Contains(out, "m=16 b=8") {
		t.Errorf("decode output: %s", out)
	}

	// Wire-dump input.
	wire := filepath.Join(t.TempDir(), "wire.txt")
	if err := os.WriteFile(wire, []byte("0000000011110000"), 0o644); err != nil {
		t.Fatal(err)
	}
	out = run(t, bin, "log", "-m", "16", "-b", "8", "-in", wire)
	if !strings.Contains(out, "k=2") {
		t.Errorf("wire log output: %s", out)
	}

	// VCD input.
	vcdFile := filepath.Join(t.TempDir(), "dump.vcd")
	doc := "$timescale 1 ns $end\n$scope module top $end\n$var wire 1 ! sig $end\n$upscope $end\n$enddefinitions $end\n#0\n0!\n#3\n1!\n#7\n0!\n#16\n"
	if err := os.WriteFile(vcdFile, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	out = run(t, bin, "log", "-m", "16", "-b", "8", "-vcd", vcdFile, "-signal", "sig")
	if !strings.Contains(out, "k=2") {
		t.Errorf("vcd log output: %s", out)
	}
}

func TestSocsimCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles binaries")
	}
	bin := buildCmd(t, "socsim")
	dir := t.TempDir()
	vcdOut := filepath.Join(dir, "soc.vcd")
	logOut := filepath.Join(dir, "soc.tpr")
	out := run(t, bin, "-m", "256", "-b", "20", "-cycles", "1024",
		"-vcd", vcdOut, "-log", logOut)
	if !strings.Contains(out, "trace-cycle   0") {
		t.Errorf("socsim output: %s", out)
	}
	for _, f := range []string{vcdOut, logOut} {
		if st, err := os.Stat(f); err != nil || st.Size() == 0 {
			t.Errorf("missing artifact %s", f)
		}
	}

	// The dumped log must decode with the timeprint tool.
	tpBin := buildCmd(t, "timeprint")
	out = run(t, tpBin, "decode", "-in", logOut)
	if !strings.Contains(out, "m=256 b=20") {
		t.Errorf("decode of socsim log: %s", out)
	}
}

func TestTprbenchFig4CLI(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles binaries")
	}
	bin := buildCmd(t, "tprbench")
	out := run(t, bin, "-exp", "fig4")
	for _, want := range []string{"256", "8 (paper: 8)", "1 (paper: 1)"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig4 output missing %q:\n%s", want, out)
		}
	}
}
