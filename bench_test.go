// Benchmarks regenerating the paper's evaluation, one benchmark family
// per table/figure, plus the ablations called out in DESIGN.md. Heavy
// cases (m = 512, 1024) take seconds per iteration; run with
// -benchtime=1x for a single-pass regeneration:
//
//	go test -bench=. -benchmem -benchtime=1x .
package timeprints_test

import (
	"context"
	"fmt"
	"testing"

	timeprints "repro"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/properties"
	"repro/internal/reconstruct"
	"repro/internal/sat"
)

// benchBudget caps each SAT call inside the table benchmarks. The
// paper's own hardest cells run for tens of minutes (e.g. Table 2's
// 512/4 c-SAT at 33m17s on CryptoMiniSat); the budget keeps a full
// benchmark sweep to minutes while still exposing the ordering. Cells
// that exhaust it report a nonzero "timeouts" metric.
const benchBudget = 2_000_000

// BenchmarkTable1 times each (m, k, query) cell of Table 1.
func BenchmarkTable1(b *testing.B) {
	for _, c := range bench.Table1Cases(testing.Short()) {
		m, k := c[0], c[1]
		enc, err := bench.CachedEncoding("incremental", m, bench.PaperB[m], 4, 0)
		if err != nil {
			b.Fatal(err)
		}
		entry := core.Log(enc, bench.PlantedSignal(m, k))
		for _, q := range bench.Queries() {
			b.Run(fmt.Sprintf("m=%d/k=%d/%s", m, k, q.Name), func(b *testing.B) {
				timeouts := 0
				for i := 0; i < b.N; i++ {
					if cell := bench.RunQuery(enc, entry, q, benchBudget); cell.TimedOut {
						timeouts++
					}
				}
				b.ReportMetric(float64(timeouts), "timeouts")
			})
		}
	}
}

// BenchmarkTable2 times the encoding-scheme comparison cells.
func BenchmarkTable2(b *testing.B) {
	for _, c := range bench.Table2Cases(testing.Short()) {
		m, k := c[0], c[1]
		sig := bench.PlantedSignal(m, k)
		for _, scheme := range []struct {
			name string
			gen  string
			bits int
			seed int64
		}{
			{"incremental", "incremental", bench.PaperB[m], 0},
			{"random", "random", bench.RandomB[m], 1},
		} {
			enc, err := bench.CachedEncoding(scheme.gen, m, scheme.bits, 4, scheme.seed)
			if err != nil {
				b.Fatal(err)
			}
			entry := core.Log(enc, sig)
			for _, q := range bench.Queries() {
				if q.Limit != 1 {
					continue
				}
				b.Run(fmt.Sprintf("m=%d/k=%d/%s/%s", m, k, scheme.name, q.Name), func(b *testing.B) {
					timeouts := 0
					for i := 0; i < b.N; i++ {
						if cell := bench.RunQuery(enc, entry, q, benchBudget); cell.TimedOut {
							timeouts++
						}
					}
					b.ReportMetric(float64(timeouts), "timeouts")
				})
			}
		}
	}
}

// BenchmarkFigure4 reruns the didactic staircase (256 -> 8 -> 1).
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.Figure4()
		if err != nil {
			b.Fatal(err)
		}
		if res.AnyK != 256 || res.WithK != 8 || res.WithProperty != 1 {
			b.Fatalf("staircase %d/%d/%d, want 256/8/1", res.AnyK, res.WithK, res.WithProperty)
		}
	}
}

// BenchmarkCANReconstruction regenerates Section 5.2.1: whole-cycle
// and windowed reconstruction plus the deadline proof.
func BenchmarkCANReconstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunCAN(experiments.DefaultCANConfig())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.WholeOffsets) != 1 || res.WholeOffsets[0] != 823 {
			b.Fatalf("offsets %v", res.WholeOffsets)
		}
	}
}

// BenchmarkRefreshDetect regenerates Section 5.2.2 at one ambient.
func BenchmarkRefreshDetect(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunRefresh(experiments.DefaultRefreshConfig(45))
		if err != nil {
			b.Fatal(err)
		}
		if len(res.TPMismatches) == 0 {
			b.Fatal("no mismatches")
		}
	}
}

// BenchmarkLogging measures the on-line cost of the logging procedure
// itself — the part that would run in hardware.
func BenchmarkLogging(b *testing.B) {
	enc, err := timeprints.NewEncoding(1024, 24)
	if err != nil {
		b.Fatal(err)
	}
	logger := timeprints.NewLogger(enc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		logger.TickChange(i%37 == 0)
	}
}

// BenchmarkEncodingGeneration measures the one-time setup cost of the
// paper's two generators.
func BenchmarkEncodingGeneration(b *testing.B) {
	for _, tc := range []struct {
		scheme string
		m, bts int
	}{
		{"incremental", 64, 13},
		{"incremental", 1024, 24},
		{"random", 512, 31},
	} {
		b.Run(fmt.Sprintf("%s/m=%d", tc.scheme, tc.m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var err error
				if tc.scheme == "incremental" {
					_, err = encoding.Incremental(tc.m, tc.bts, 4)
				} else {
					_, err = encoding.RandomConstrained(tc.m, tc.bts, 4, int64(i), 0)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablations (DESIGN.md section 5) ---

// BenchmarkAblationCardinality compares the Sinz sequential counter
// against the naive binomial encoding.
func BenchmarkAblationCardinality(b *testing.B) {
	// m is kept small: the binomial encoding needs C(m, k+1) clauses
	// and refuses anything explosive by design.
	enc, err := bench.CachedEncoding("incremental", 32, 11, 4, 0)
	if err != nil {
		b.Fatal(err)
	}
	entry := core.Log(enc, bench.PlantedSignal(32, 3))
	for _, mode := range []struct {
		name string
		opts reconstruct.Options
	}{
		{"sinz", reconstruct.Options{}},
		{"binomial", reconstruct.Options{BinomialCardinality: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rec, err := reconstruct.New(enc, entry, nil, mode.opts)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := rec.EnumerateStrict(10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationXor compares native XOR clauses (with and without
// cutting) against Tseitin CNF expansion.
func BenchmarkAblationXor(b *testing.B) {
	enc, err := bench.CachedEncoding("incremental", 128, 16, 4, 0)
	if err != nil {
		b.Fatal(err)
	}
	entry := core.Log(enc, bench.PlantedSignal(128, 4))
	for _, mode := range []struct {
		name string
		opts reconstruct.Options
	}{
		{"native-cut8", reconstruct.Options{}},
		{"native-uncut", reconstruct.Options{XorCutLen: -1}},
		{"native-cut4", reconstruct.Options{XorCutLen: 4}},
		{"native-cut16", reconstruct.Options{XorCutLen: 16}},
		{"tseitin-cnf", reconstruct.Options{XorAsCNF: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rec, err := reconstruct.New(enc, entry, nil, mode.opts)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := rec.EnumerateStrict(10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSATvsBruteForce compares the SAT path against
// Gaussian coset enumeration where the latter is feasible.
func BenchmarkAblationSATvsBruteForce(b *testing.B) {
	enc, err := bench.CachedEncoding("incremental", 20, 10, 4, 0)
	if err != nil {
		b.Fatal(err)
	}
	entry := core.Log(enc, bench.PlantedSignal(20, 4))
	b.Run("sat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rec, err := reconstruct.New(enc, entry, nil, reconstruct.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := rec.EnumerateStrict(0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bruteforce", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := reconstruct.BruteForce(enc, entry, 0, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPresolveOnOff quantifies the GF(2) Gaussian presolve: the
// same reconstruction with and without row reduction ahead of the SAT
// encoding. The presolve drops b − rank redundant parity rows and
// fixes unit-row positions before the solver ever runs.
func BenchmarkPresolveOnOff(b *testing.B) {
	for _, c := range []struct{ m, k int }{{128, 4}, {512, 8}} {
		enc, err := bench.CachedEncoding("incremental", c.m, bench.PaperB[c.m], 4, 0)
		if err != nil {
			b.Fatal(err)
		}
		entry := core.Log(enc, bench.PlantedSignal(c.m, c.k))
		for _, mode := range []struct {
			name string
			opts reconstruct.Options
		}{
			{"presolve", reconstruct.Options{MaxConflicts: benchBudget}},
			{"raw", reconstruct.Options{NoPresolve: true, MaxConflicts: benchBudget}},
		} {
			b.Run(fmt.Sprintf("m=%d/k=%d/%s", c.m, c.k, mode.name), func(b *testing.B) {
				var fixed, freed float64
				for i := 0; i < b.N; i++ {
					rec, err := reconstruct.New(enc, entry, nil, mode.opts)
					if err != nil {
						b.Fatal(err)
					}
					if _, st, err := rec.First(); err != nil || st != sat.Sat {
						b.Fatalf("status %v err %v", st, err)
					}
					ps := rec.Stats().Presolve
					fixed, freed = float64(ps.Fixed), float64(ps.Freed)
				}
				b.ReportMetric(fixed, "fixed")
				b.ReportMetric(freed, "freed")
			})
		}
	}
}

// BenchmarkParallelWorkers exercises the cube-split portfolio across
// worker counts on a full enumeration with a fixed amount of total
// work that the cubes partition: a window-restricted m = 512 instance
// (the paper's failure-window query shape) whose ~1.5k candidates are
// exhausted in seconds serially. Wall-clock speedup needs real cores —
// with GOMAXPROCS=1 the portfolio degenerates to sequential cube
// processing and this benchmark measures its overhead instead.
func BenchmarkParallelWorkers(b *testing.B) {
	const m, window = 512, 26
	enc, err := bench.CachedEncoding("incremental", m, bench.PaperB[m], 4, 0)
	if err != nil {
		b.Fatal(err)
	}
	entry := core.Log(enc, core.SignalFromChanges(m, 2, 7, 11, 15, 19, 21, 23, 25))
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var count float64
			for i := 0; i < b.N; i++ {
				rec, err := reconstruct.New(enc, entry,
					[]reconstruct.Constraint{properties.Window{Lo: 0, Hi: window}}, reconstruct.Options{})
				if err != nil {
					b.Fatal(err)
				}
				sigs, exhausted, err := rec.EnumerateParallelStrict(0, workers)
				if err != nil {
					b.Fatal(err)
				}
				if !exhausted {
					b.Fatal("enumeration not exhausted")
				}
				count = float64(len(sigs))
			}
			b.ReportMetric(count, "candidates")
		})
	}
}

// BenchmarkAblationLIDepth quantifies what the LI-4 constraint buys:
// ambiguity (candidate count) and solve time under weaker depths.
func BenchmarkAblationLIDepth(b *testing.B) {
	for _, d := range []int{2, 3, 4} {
		enc, err := bench.CachedEncoding("incremental", 64, 13, d, 0)
		if err != nil {
			b.Fatal(err)
		}
		entry := core.Log(enc, bench.PlantedSignal(64, 4))
		b.Run(fmt.Sprintf("LI-%d", d), func(b *testing.B) {
			total := 0
			for i := 0; i < b.N; i++ {
				rec, err := reconstruct.New(enc, entry, nil, reconstruct.Options{})
				if err != nil {
					b.Fatal(err)
				}
				sigs, _, err := rec.EnumerateStrict(0)
				if err != nil {
					b.Fatal(err)
				}
				total = len(sigs)
			}
			b.ReportMetric(float64(total), "candidates")
		})
	}
}

// BenchmarkSessionQueries is the incremental-solving headline: the
// post-silicon debug session workload (Cao et al.) — one fixed m=512
// LI-4 encoding, 16 successive (TP, k=8) log entries from one traced
// signal, each asking for a witness reconstruction under the debug
// hypothesis that the activity burst lies inside a 48-cycle suspicion
// window (the paper's Section 5 postmortem query). The incremental
// side builds one reconstruct.Session and answers every entry with
// assumption solves on the retained solver, so the A-structure, the
// cardinality ladder and the window's guarded encoding are paid for
// once; the fresh side rebuilds a one-shot CNF instance per entry,
// the pre-PR6 behavior, and its per-query encode + presolve cost
// dominates. The benchdiff guard records both sides in BENCH_PR6.json
// (make session-bench); the incremental side must hold a >= 2x
// advantage.
func BenchmarkSessionQueries(b *testing.B) {
	const (
		m       = 512
		k       = 8
		queries = 16
	)
	enc, err := bench.CachedEncoding("incremental", m, bench.PaperB[m], 4, 0)
	if err != nil {
		b.Fatal(err)
	}
	window := properties.Window{Lo: 0, Hi: 48}
	props := []reconstruct.Constraint{window}
	// 16 distinct 8-change bursts inside the window, generated by a
	// fixed congruence so the workload is deterministic.
	entries := make([]core.LogEntry, queries)
	for q := range entries {
		changes := make([]int, 0, k)
		used := map[int]bool{}
		x := 3 + q
		for len(changes) < k {
			x = (x*5 + 3 + q) % window.Hi
			for used[x] {
				x = (x + 1) % window.Hi
			}
			used[x] = true
			changes = append(changes, x)
		}
		entries[q] = core.Log(enc, core.SignalFromChanges(m, changes...))
	}

	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sess, err := reconstruct.NewSession(enc, reconstruct.SessionOptions{MaxK: k})
			if err != nil {
				b.Fatal(err)
			}
			for _, e := range entries {
				sigs, _, err := sess.Query(e, props, 1)
				if err != nil {
					b.Fatal(err)
				}
				if len(sigs) == 0 {
					b.Fatal("no witness")
				}
			}
		}
	})
	b.Run("fresh", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, e := range entries {
				rec, err := reconstruct.New(enc, e, props, reconstruct.Options{})
				if err != nil {
					b.Fatal(err)
				}
				sigs, _, err := rec.EnumerateStrict(1)
				if err != nil {
					b.Fatal(err)
				}
				if len(sigs) == 0 {
					b.Fatal("no witness")
				}
			}
		}
	})
}

// BenchmarkSessionQueriesGauss is the in-search Gauss headline: the
// unconstrained m=512 witness cells — the planted Table 1 entries for
// k = 3, 4, 8, queried through a session with NO suspicion window, the
// ROADMAP's named worst regime, where the 256-wide parity rows used to
// burn 17-43k conflicts per cell because a row only propagates once a
// single literal is left. The insearch side keeps the reduced GF(2)
// matrix live across decision levels (in-search Gaussian elimination,
// rebuilt from the RREF basis at restarts); the level0 side is the PR6
// behavior, reducing only before search. The planted entries are
// deterministic, so the summed conflict count is a stable
// machine-independent effort metric — the benchdiff guard in
// BENCH_PR9.json (make gauss-bench) pins the propagation win, not just
// the wall clock. (A burst-entry variant of this workload is
// heavy-tail-dominated: per-query conflicts span 300-74k on identical
// configurations, so its 16-query mean cannot separate the modes.)
func BenchmarkSessionQueriesGauss(b *testing.B) {
	const m = 512
	ks := []int{3, 4, 8}
	enc, err := bench.CachedEncoding("incremental", m, bench.PaperB[m], 4, 0)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name     string
		insearch bool
	}{{"insearch", true}, {"level0", false}} {
		b.Run(mode.name, func(b *testing.B) {
			var conflicts, gprops, gconfl int64
			for i := 0; i < b.N; i++ {
				for _, k := range ks {
					reg := obs.NewRegistry()
					sess, err := reconstruct.NewSession(enc, reconstruct.SessionOptions{
						MaxK: k, InSearchGauss: mode.insearch, Obs: reg,
					})
					if err != nil {
						b.Fatal(err)
					}
					entry := core.Log(enc, bench.PlantedSignal(m, k))
					sigs, _, err := sess.Query(entry, nil, 1)
					if err != nil {
						b.Fatal(err)
					}
					if len(sigs) == 0 {
						b.Fatal("no witness")
					}
					snap := reg.Snapshot().Counters
					conflicts += snap[sat.MetricConflicts]
					gprops += snap[sat.MetricGaussInSearchProps]
					gconfl += snap[sat.MetricGaussInSearchConflicts]
					if testing.Verbose() {
						b.Logf("k=%d: %d conflicts", k, snap[sat.MetricConflicts])
					}
				}
			}
			b.ReportMetric(float64(conflicts)/float64(b.N), "conflicts")
			b.ReportMetric(float64(gprops)/float64(b.N), "gprops")
			b.ReportMetric(float64(gconfl)/float64(b.N), "gconfl")
		})
	}
}

// BenchmarkDispatch is the cost-model routing headline: a mix of
// requests a debug frontend actually sends — rank-pinned one-hot
// queries (nullity 0, answerable by elimination alone) and small-k
// postmortem queries (algebraic decode territory) — pushed through the
// dispatcher with auto-routing versus pinned to always-SAT. Auto must
// hold a >= 2x advantage: pinned systems never touch the solver and
// k <= 4 never builds a CNF. The benchdiff guard records both sides in
// BENCH_PR7.json (make dispatch-bench).
func BenchmarkDispatch(b *testing.B) {
	onehot := encoding.OneHot(96)
	inc, err := bench.CachedEncoding("incremental", 128, bench.PaperB[128], 4, 0)
	if err != nil {
		b.Fatal(err)
	}
	type request struct {
		enc   *encoding.Encoding
		entry core.LogEntry
	}
	var mix []request
	for i := 0; i < 6; i++ {
		mix = append(mix, request{onehot, core.Log(onehot, core.SignalFromChanges(96, i, i+7, i+20, i+41))})
		mix = append(mix, request{inc, core.Log(inc, core.SignalFromChanges(128, i+2, i+13, i+55))})
	}
	for _, mode := range []struct {
		name  string
		force string
	}{
		{"auto", "auto"},
		{"always-sat", "sat"},
	} {
		dispatchers := map[*encoding.Encoding]*reconstruct.Dispatcher{}
		for _, e := range []*encoding.Encoding{onehot, inc} {
			d, err := reconstruct.NewDispatcher(e, reconstruct.DispatchOptions{Force: mode.force})
			if err != nil {
				b.Fatal(err)
			}
			dispatchers[e] = d
		}
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, req := range mix {
					sigs, exhausted, err := dispatchers[req.enc].Enumerate(context.Background(), req.entry, nil, 0)
					if err != nil {
						b.Fatal(err)
					}
					if !exhausted || len(sigs) == 0 {
						b.Fatalf("got %d candidates (exhausted=%v)", len(sigs), exhausted)
					}
				}
			}
		})
	}
}
